//! `repro` — regenerate every table and figure of the RoCC paper.
//!
//! ```text
//! repro <experiment> [quick|paper]
//! repro all [quick|paper]
//! ```
//!
//! Experiments: fig5 fig6 fig7 fig8 fig9 fig11 fig12a fig12b fig13 fig14
//! fig15 fig16 table3 fig17 fig18 fig19 fig20 table1 ablation chaos

use rocc_experiments::fct::{
    fct_comparison_supervised, fold_increase, table3, BufferRegime, SchemeFcts, Workload,
};
use rocc_experiments::parallel::ExecMode;
use rocc_experiments::supervisor::{CampaignReport, SnapshotStore, Supervisor};
use rocc_experiments::{analytic, micro, observatory, table1, Scale};
use rocc_sim::prelude::{write_artifact, Sample};

fn human_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

fn size_label(b: u64) -> String {
    if b >= 1_000_000 {
        format!("{}M", b / 1_000_000)
    } else if b >= 1_000 {
        format!("{}K", b / 1_000)
    } else {
        format!("{b}")
    }
}

/// Print a decimated (time, value) series as rows.
fn print_series(label: &str, series: &[Sample], every: usize, unit: &str, scale: f64) {
    println!("# {label}");
    for s in series.iter().step_by(every.max(1)) {
        println!("  t={:8.2}ms  {:10.2} {unit}", s.t.as_millis_f64(), s.v / scale);
    }
}

fn run_fig5() {
    println!("== Fig. 5: phase margin vs (alpha, beta), T=40us, N=2 ==");
    let pts = analytic::fig5(10);
    println!("{:>10} {:>10} {:>12}", "alpha", "beta", "margin(deg)");
    for p in pts {
        println!(
            "{:>10.4} {:>10.4} {:>12.1}{}",
            p.alpha,
            p.beta,
            p.phase_margin_deg,
            if p.phase_margin_deg > 0.0 { "  stable" } else { "  UNSTABLE" }
        );
    }
}

fn run_fig6() {
    println!("== Fig. 6: stability margin for N=2 vs N=10 (alpha=0.3, beta=3) ==");
    let r = analytic::fig6();
    println!("phase margin N=2 : {:+.1} deg", r.pm_n2);
    println!("phase margin N=10: {:+.1} deg", r.pm_n10);
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "w(rad/s)", "gain2(dB)", "ph2(deg)", "gain10", "ph10"
    );
    for (a, b) in r.n2.iter().zip(&r.n10).step_by(12) {
        println!(
            "{:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            a.w, a.gain_db, a.phase_deg, b.gain_db, b.phase_deg
        );
    }
}

fn run_fig7() {
    println!("== Fig. 7: margin (a) and loop bandwidth (b) vs N, six alpha:beta pairs ==");
    let series = analytic::fig7();
    print!("{:>18}", "alpha:beta");
    for p in &series[0].points {
        print!(" {:>9}", format!("N={}", p.n));
    }
    println!();
    for s in &series {
        print!("{:>18}", format!("{:.4}:{:.4}", s.alpha, s.beta));
        for p in &s.points {
            print!(" {:>9.1}", p.phase_margin_deg);
        }
        println!("   (margin deg)");
        print!("{:>18}", "");
        for p in &s.points {
            print!(" {:>9.0}", p.bandwidth_hz);
        }
        println!("   (bandwidth Hz)");
    }
}

fn run_fig8(scale: Scale) {
    println!("== Fig. 8: fairness & stability, N in {{2,10,100}}, B in {{40,100}}G, 90% load ==");
    for c in micro::fig8(scale) {
        let mean_gbps: f64 =
            c.per_flow_goodput.iter().sum::<f64>() / c.per_flow_goodput.len() as f64 / 1e9;
        let ideal = c.gbps as f64 / c.n as f64 * (1000.0 / 1048.0);
        println!(
            "B={:>3}G N={:>3}: queue {:>8} +- {:>8}, per-flow {:>6.2} Gb/s (ideal {:>6.2}), settle {}",
            c.gbps,
            c.n,
            human_bytes(c.queue_mean),
            human_bytes(c.queue_sd),
            mean_gbps,
            ideal,
            c.settle.map_or("never".into(), |t| format!("{t}")),
        );
    }
}

fn run_fig9(scale: Scale) {
    println!("== Fig. 9: convergence under exponential load swing 3 -> 96 -> 3 flows ==");
    let r = micro::fig9(scale);
    println!("# active-flow steps:");
    for (t, n) in &r.steps {
        println!("  t={:6.1}ms  N={n}", t.as_millis_f64());
    }
    print_series("queue (KB)", &r.queue, 40, "KB", 1e3);
    print_series("flow-0 RP rate (Gb/s)", &r.rate, 40, "Gb/s", 1e9);
}

fn run_fig11(scale: Scale) {
    println!("== Fig. 11: RoCC vs TIMELY/QCN/DCQCN/DCQCN+PI/HPCC (N=10, 40G) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "rate avg", "rate min", "rate max", "queue avg", "util"
    );
    for row in micro::fig11(scale) {
        let n = row.per_flow_rate.len() as f64;
        let avg = row.per_flow_rate.iter().sum::<f64>() / n / 1e9;
        let min = row.per_flow_rate.iter().cloned().fold(f64::MAX, f64::min) / 1e9;
        let max = row.per_flow_rate.iter().cloned().fold(f64::MIN, f64::max) / 1e9;
        println!(
            "{:>10} {:>9.2}G/s {:>9.2}G/s {:>9.2}G/s {:>12} {:>7.1}%",
            row.scheme.name(),
            avg,
            min,
            max,
            human_bytes(row.queue_mean),
            row.util_mean * 100.0
        );
    }
}

fn run_fig12a(scale: Scale) {
    println!("== Fig. 12a: multi-bottleneck fairness (expected: D0,D5 = 5 Gb/s; D1-D4 = 8.75) ==");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "D0", "D1", "D2", "D3", "D4", "D5"
    );
    for row in micro::fig12a(scale) {
        print!("{:>10}", row.scheme.name());
        for t in &row.throughput {
            print!(" {:>8.2}", t / 1e9);
        }
        println!("   (Gb/s)");
    }
}

fn run_fig12b(scale: Scale) {
    println!("== Fig. 12b: asymmetric-topology fairness (expected: all 14.29 Gb/s) ==");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "D0", "D1", "D2", "D3", "D4", "D5", "D6"
    );
    for row in micro::fig12b(scale) {
        print!("{:>10}", row.scheme.name());
        for t in &row.throughput {
            print!(" {:>8.2}", t / 1e9);
        }
        println!("   (Gb/s)");
    }
}

fn run_fig13(scale: Scale) {
    println!("== Fig. 13: DPDK-testbed profile vs clean simulation (3x10G sources) ==");
    for r in micro::fig13(scale) {
        let rates: Vec<String> = r.goodput.iter().map(|g| format!("{:.2}", g / 1e9)).collect();
        println!(
            "{:>8}-{:<4} queue mean {:>8}  per-flow Gb/s [{}]",
            r.profile,
            r.scenario,
            human_bytes(r.queue_mean),
            rates.join(", ")
        );
    }
    println!("(expected: queue stabilizes at 75 KB in all four; uni -> ~3.2 Gb/s each; mix -> ~6/3/1 Gb/s)");
}

fn print_fct_table(results: &[SchemeFcts], which: &str) {
    let bins: Vec<u64> = results[0].bins.iter().map(|b| b.bin).collect();
    print!("{:>10}", "scheme");
    for b in &bins {
        print!(" {:>9}", size_label(*b));
    }
    println!();
    for r in results {
        print!("{:>10}", r.scheme.name());
        for b in &r.bins {
            let stat = match which {
                "avg" => b.avg,
                "p90" => b.p90,
                _ => b.p99,
            };
            if b.count == 0 {
                print!(" {:>9}", "-");
            } else {
                print!(" {:>9.3}", stat.mean * 1e3);
            }
        }
        println!("   (FCT ms, {which})");
    }
}

fn run_fct(scale: Scale, which: &str, fig: &str, sup: &Supervisor) -> Vec<CampaignReport> {
    println!("== {fig}: {which} FCT by flow size, 70% load, DCQCN vs HPCC vs RoCC ==");
    let mut reports = Vec::new();
    for wl in [Workload::WebSearch, Workload::FbHadoop] {
        println!("-- {} --", wl.name());
        let (res, rep) = fct_comparison_supervised(wl, 0.7, scale, BufferRegime::Pfc, sup);
        print_fct_table(&res, which);
        reports.push(rep);
    }
    reports
}

/// One pass over both workloads printing Figs. 14/15/16 + Table 3 + the
/// Fig. 17 side data — the efficient path for paper-scale runs.
fn run_fct_all(scale: Scale, sup: &Supervisor) -> Vec<CampaignReport> {
    println!("== Figs. 14-16 + Table 3 + Fig. 17, one pass, 70% load ==");
    let mut reports = Vec::new();
    for wl in [Workload::WebSearch, Workload::FbHadoop] {
        println!("-- {} --", wl.name());
        let (res, rep) = fct_comparison_supervised(wl, 0.7, scale, BufferRegime::Pfc, sup);
        reports.push(rep);
        for which in ["avg", "p90", "p99"] {
            print_fct_table(&res, which);
        }
        if wl == Workload::FbHadoop {
            println!("Table 3 (flow-level rate allocation):");
            for row in table3(&res) {
                println!(
                    "  {:>8}: {:>10.2} +- {:>10.2} Mb/s",
                    row.scheme.name(),
                    row.mean_bps / 1e6,
                    row.std_bps / 1e6
                );
            }
        } else {
            println!("Fig. 17 (queues KB core/ingress/egress, PFC counts):");
            for r in &res {
                println!(
                    "  {:>8}: q {:>8.1}/{:>8.1}/{:>8.1}  pfc {:>6.1}/{:>6.1}/{:>6.1}",
                    r.scheme.name(),
                    r.queues[0] / 1e3,
                    r.queues[1] / 1e3,
                    r.queues[2] / 1e3,
                    r.pfc[0],
                    r.pfc[1],
                    r.pfc[2]
                );
            }
        }
    }
    reports
}

fn run_table3(scale: Scale, sup: &Supervisor) -> Vec<CampaignReport> {
    println!("== Table 3: flow-level rate allocation, FB_Hadoop at 70% ==");
    let (res, rep) = fct_comparison_supervised(Workload::FbHadoop, 0.7, scale, BufferRegime::Pfc, sup);
    println!("{:>10} {:>16} {:>16}", "scheme", "avg rate (Mb/s)", "std dev (Mb/s)");
    for row in table3(&res) {
        println!(
            "{:>10} {:>16.2} {:>16.2}",
            row.scheme.name(),
            row.mean_bps / 1e6,
            row.std_bps / 1e6
        );
    }
    vec![rep]
}

fn run_fig17(scale: Scale, sup: &Supervisor) -> Vec<CampaignReport> {
    println!("== Fig. 17: avg queue size & PFC activation by CP class, WebSearch 70% ==");
    let (res, rep) = fct_comparison_supervised(Workload::WebSearch, 0.7, scale, BufferRegime::Pfc, sup);
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "q-core", "q-ingress", "q-egress", "pfc-core", "pfc-ingr", "pfc-egr"
    );
    for r in &res {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>10.1} {:>10.1} {:>10.1}",
            r.scheme.name(),
            human_bytes(r.queues[0]),
            human_bytes(r.queues[1]),
            human_bytes(r.queues[2]),
            r.pfc[0],
            r.pfc[1],
            r.pfc[2]
        );
    }
    vec![rep]
}

fn run_fold(
    scale: Scale,
    regime: BufferRegime,
    fig: &str,
    label: &str,
    sup: &Supervisor,
) -> Vec<CampaignReport> {
    println!("== {fig}: {label}, FB_Hadoop 70% ==");
    let (base, rep_base) =
        fct_comparison_supervised(Workload::FbHadoop, 0.7, scale, BufferRegime::Pfc, sup);
    let (alt, rep_alt) = fct_comparison_supervised(Workload::FbHadoop, 0.7, scale, regime, sup);
    for row in fold_increase(&base, &alt) {
        print!("{:>10}", row.scheme.name());
        for (bin, fct, fold) in &row.bins {
            print!(" {}:{:.2}ms({:.1}x)", size_label(*bin), fct * 1e3, fold);
        }
        println!();
        println!(
            "{:>10}  retx share {:.2}%, drops {}",
            "",
            row.retx_fraction * 100.0,
            row.drops
        );
    }
    vec![rep_base, rep_alt]
}

fn run_fig19(scale: Scale) {
    println!("== Fig. 19 (A.1): DCQCN & HPCC verification — staggered 4-flow convergence ==");
    for run in micro::fig19(scale) {
        println!("-- {} --", run.scheme.name());
        let len = run.flow_series[0].len();
        for i in (0..len).step_by((len / 16).max(1)) {
            let t = run.flow_series[0][i].t;
            let vals: Vec<String> = run
                .flow_series
                .iter()
                .map(|s| format!("{:5.1}", s[i].v / 1e9))
                .collect();
            println!("  t={:7.1}ms  [{}] Gb/s", t.as_millis_f64(), vals.join(" "));
        }
    }
}

fn run_ablation() {
    use rocc_experiments::ablation;
    println!("== Ablations: RoCC design choices (DESIGN.md §5) ==");
    let print = |rs: &[ablation::AblationResult]| {
        for r in rs {
            println!(
                "{:>22}: settle {:>9}, queue {:>8} +- {:>8}, fairness {:.4}, CNPs {:>7}, goodput {:>5.2} Gb/s",
                r.variant,
                r.settle.map_or("never".into(), |t| format!("{t}")),
                human_bytes(r.queue_mean),
                human_bytes(r.queue_sd),
                r.fairness,
                r.cnps,
                r.mean_goodput / 1e9,
            );
        }
    };
    println!("-- auto-tuning (N = 64) --");
    print(&ablation::ablate_auto_tune(64));
    println!("-- multiplicative decrease (N = 10) --");
    print(&ablation::ablate_md(10));
    println!("-- flow-table policy (N = 10) --");
    print(&ablation::ablate_flow_table(10));
    println!("-- CNP prioritization (N = 10) --");
    print(&ablation::ablate_cnp_priority(10));
}

fn run_chaos(scale: Scale, sup: &Supervisor) -> Vec<CampaignReport> {
    use rocc_experiments::chaos;
    println!("== Chaos: RoCC vs DCQCN under CNP loss (finite flows, 40G dumbbell) ==");
    println!(
        "{:>10} {:>9} {:>11} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "cnp-loss", "completed", "mean FCT", "max FCT", "goodput", "cnps-lost"
    );
    let (cells, rep) = chaos::cnp_loss_sweep_supervised(scale, sup);
    for c in cells.iter().flatten() {
        println!(
            "{:>10} {:>8.1}% {:>8}/{:<2} {:>9.3}ms {:>9.3}ms {:>9.2}G/s {:>10}",
            c.scheme.name(),
            c.cnp_loss * 100.0,
            c.completed,
            c.flows,
            c.mean_fct_ms,
            c.max_fct_ms,
            c.mean_goodput_bps / 1e9,
            c.ctrl_lost
        );
    }
    println!("== Chaos: total CNP blackout — fast recovery back to line rate ==");
    let b = chaos::cnp_blackout(scale);
    println!(
        "throttled at {:.1} Gb/s; blackout from {}; recovered to {:.1} Gb/s ({} CNPs destroyed)",
        b.pre_blackout_gbps, b.blackout_start, b.post_recovery_gbps, b.cnps_lost
    );
    print_series("flow-0 RP rate (Gb/s)", &b.rate, 8, "Gb/s", 1e9);
    println!("== Chaos: PFC pause storm — watchdog pause pressure by scheme ==");
    println!(
        "{:>10} {:>11} {:>12} {:>8} {:>10} {:>14}",
        "scheme", "completed", "max-paused", "depth", "victims", "victim FCT"
    );
    for c in chaos::pause_storm(scale) {
        println!(
            "{:>10} {:>8}/{:<2} {:>11.1}% {:>8} {:>10} {:>11.3}ms",
            c.scheme.map(|s| s.name()).unwrap_or("none"),
            c.completed,
            c.flows,
            c.max_pause_fraction * 100.0,
            c.max_pause_depth,
            c.victims.len(),
            c.victim_fct_ms
        );
    }
    println!("== Chaos: PFC ring deadlock probe (5-switch cyclic buffer dependency) ==");
    for c in chaos::deadlock_probe() {
        if c.cycle_len > 0 {
            println!(
                "{:>10}: DEADLOCK — {}-node pause cycle confirmed at {:.1} µs",
                c.scheme, c.cycle_len, c.detected_at_us
            );
        } else {
            println!(
                "{:>10}: {}",
                c.scheme,
                if c.completed { "all flows completed" } else { "stalled without a cycle" }
            );
        }
        println!("{:>12}{}", "", c.verdict_json);
    }
    vec![rep]
}

fn run_table1() {
    println!("== Table 1: comparison of selected congestion control solutions ==");
    for r in table1::table1() {
        println!(
            "{:>8} | switch: {:<34} | source: {:<46} | dest: {}",
            r.solution, r.switch_action, r.source_action, r.destination_action
        );
    }
}

/// Print campaign reports for failed campaigns to stderr and exit nonzero.
///
/// The uniform failure contract for every supervised subcommand: partial
/// results have already been printed/written, the report JSON names each
/// failed cell, and the exit status tells CI the campaign degraded.
fn finish(reports: &[CampaignReport]) {
    let failed: Vec<&CampaignReport> = reports.iter().filter(|r| !r.all_ok()).collect();
    if failed.is_empty() {
        return;
    }
    for r in failed {
        eprintln!("{}", r.to_json());
    }
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    // `--fail-fast` / `--keep-going` may appear anywhere; last one wins.
    // Default is keep-going: run every cell, report failures at the end.
    let mut fail_fast = false;
    args.retain(|a| match a.as_str() {
        "--fail-fast" => {
            fail_fast = true;
            false
        }
        "--keep-going" => {
            fail_fast = false;
            false
        }
        _ => true,
    });
    let exp = args.get(1).map(String::as_str).unwrap_or("help");
    let scale = args
        .get(2)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);
    let sup = Supervisor::new(ExecMode::Parallel).with_fail_fast(fail_fast);
    let all = [
        "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12a", "fig12b",
        "fig13", "fig14", "fig15", "fig16", "table3", "fig17", "fig18", "fig19", "fig20",
        "ablation", "chaos",
    ];
    let run_one = |name: &str| -> Vec<CampaignReport> {
        match name {
        "fig5" => {
            run_fig5();
            Vec::new()
        }
        "fig6" => {
            run_fig6();
            Vec::new()
        }
        "fig7" => {
            run_fig7();
            Vec::new()
        }
        "fig8" => {
            run_fig8(scale);
            Vec::new()
        }
        "fig9" => {
            run_fig9(scale);
            Vec::new()
        }
        "fig11" => {
            run_fig11(scale);
            Vec::new()
        }
        "fig12a" => {
            run_fig12a(scale);
            Vec::new()
        }
        "fig12b" => {
            run_fig12b(scale);
            Vec::new()
        }
        "fig13" => {
            run_fig13(scale);
            Vec::new()
        }
        "fct" => run_fct_all(scale, &sup),
        "fig14" => run_fct(scale, "avg", "Fig. 14", &sup),
        "fig15" => run_fct(scale, "p90", "Fig. 15", &sup),
        "fig16" => run_fct(scale, "p99", "Fig. 16", &sup),
        "table3" => run_table3(scale, &sup),
        "fig17" => run_fig17(scale, &sup),
        "fig18" => run_fold(
            scale,
            BufferRegime::Unlimited,
            "Fig. 18",
            "PFC off + unlimited buffer",
            &sup,
        ),
        "fig19" => {
            run_fig19(scale);
            Vec::new()
        }
        "fig20" => run_fold(scale, BufferRegime::Lossy3x, "Fig. 20", "lossy + go-back-N", &sup),
        "table1" => {
            run_table1();
            Vec::new()
        }
        "ablation" => {
            run_ablation();
            Vec::new()
        }
        "chaos" => run_chaos(scale, &sup),
        "probe" => {
            // Hidden: one paper-scale fat-tree run, for timing/feasibility.
            use rocc_experiments::fct::{run_fat_tree, FatTreeConfig};
            use rocc_experiments::Scheme;
            let cfg = FatTreeConfig::for_scale(Scale::Paper);
            let t0 = std::time::Instant::now();
            let out = run_fat_tree(
                Scheme::Rocc,
                Workload::FbHadoop,
                0.7,
                &cfg,
                BufferRegime::Pfc,
                1,
            );
            println!(
                "paper-scale RoCC FB_Hadoop: {} flows, completed={}, wall {:?}",
                out.fcts.len(),
                out.all_completed,
                t0.elapsed()
            );
            Vec::new()
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("experiments: {}", all.join(" "));
            std::process::exit(2);
        }
        }
    };
    match exp {
        "trace" => {
            let scenario = args.get(2).map(String::as_str).unwrap_or("incast");
            let dir = args.get(3).map(String::as_str).unwrap_or("trace_out");
            let scale = args
                .get(4)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            let names: Vec<&str> = if scenario == "all" {
                rocc_experiments::trace::SCENARIOS.to_vec()
            } else {
                vec![scenario]
            };
            let mut bench = Vec::new();
            for name in names {
                let Some(r) = rocc_experiments::trace::run(name, scale) else {
                    eprintln!("unknown trace scenario: {name}");
                    eprintln!(
                        "scenarios: {} all",
                        rocc_experiments::trace::SCENARIOS.join(" ")
                    );
                    std::process::exit(2);
                };
                let timeline = format!("{dir}/trace_{name}.jsonl");
                let summary = format!("{dir}/trace_{name}_summary.json");
                if let Err(e) = write_artifact(&timeline, &r.timeline_jsonl())
                    .and_then(|()| write_artifact(&summary, &r.summary_json))
                {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
                println!(
                    "{name}: {} events ({} drop, {} pfc, {} cnp, {} cp_decision, {} rp_transition, {} fault), {}/{} flows completed",
                    r.events.len(),
                    r.counts.drop,
                    r.counts.pfc,
                    r.counts.cnp,
                    r.counts.cp_decision,
                    r.counts.rp_transition,
                    r.counts.fault,
                    r.completed,
                    r.flows,
                );
                println!("  wrote {timeline}");
                println!("  wrote {summary}");
                bench.push(format!("\"{name}\":{}", r.bench_json));
            }
            let bench_path = format!("{dir}/BENCH_sim.json");
            if let Err(e) = write_artifact(&bench_path, &format!("{{{}}}", bench.join(","))) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            println!("  wrote {bench_path}");
        }
        "observe" => {
            let scenario = args.get(2).map(String::as_str).unwrap_or("incast");
            let dir = args.get(3).map(String::as_str).unwrap_or("observatory_out");
            let scale = args
                .get(4)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            let seed = args
                .get(5)
                .and_then(|s| s.parse().ok())
                .unwrap_or(observatory::GOLDEN_SEED);
            let Some(run) = observatory::observe(scenario, scale, seed) else {
                eprintln!("unknown observe scenario: {scenario}");
                eprintln!("scenarios: {}", observatory::SCENARIOS.join(" "));
                std::process::exit(2);
            };
            println!(
                "{scenario}: seed {seed}, {}/{} flows completed, {} metric rows",
                run.completed,
                run.flows,
                run.metrics_jsonl.lines().count(),
            );
            match run.write_artifacts(dir) {
                Ok(paths) => {
                    for p in paths {
                        println!("  wrote {p}");
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            if !run.verdict.is_complete() {
                eprintln!("{}", run.verdict.to_json());
                std::process::exit(1);
            }
        }
        "profile" => {
            let scenario = args.get(2).map(String::as_str).unwrap_or("incast");
            let dir = args.get(3).map(String::as_str).unwrap_or("profile_out");
            let scale = args
                .get(4)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            let seed = args
                .get(5)
                .and_then(|s| s.parse().ok())
                .unwrap_or(observatory::GOLDEN_SEED);
            let Some(run) = rocc_experiments::profiling::profile(scenario, scale, seed) else {
                eprintln!("unknown profile scenario: {scenario}");
                eprintln!(
                    "scenarios: {}",
                    rocc_experiments::profiling::SCENARIOS.join(" ")
                );
                std::process::exit(2);
            };
            println!(
                "{scenario}: seed {seed}, {}/{} flows completed, {} events in {:.3}s = {:.0} events/sec",
                run.completed,
                run.flows,
                run.events,
                run.wall_seconds,
                run.events_per_sec(),
            );
            print!("{}", run.render_table());
            let sum = run.share_sum();
            println!("phase share sum: {:.2}% of measured wall", 100.0 * sum);
            match run.write_artifacts(dir) {
                Ok(paths) => {
                    for p in paths {
                        println!("  wrote {p}");
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            if (sum - 1.0).abs() >= 0.05 {
                eprintln!("phase shares sum to {sum:.4}, outside the 5% acceptance band");
                std::process::exit(1);
            }
            if !run.verdict.is_complete() {
                eprintln!("{}", run.verdict.to_json());
                std::process::exit(1);
            }
        }
        "sweep" => {
            let scenario = args.get(2).map(String::as_str).unwrap_or("incast");
            let dir = args.get(3).map(String::as_str).unwrap_or("sweep_out");
            let scale = args
                .get(4)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            let nseeds: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(4);
            let mode = args
                .get(6)
                .and_then(|s| ExecMode::parse(s))
                .unwrap_or(ExecMode::Parallel);
            let seeds: Vec<u64> =
                (0..nseeds).map(|i| observatory::GOLDEN_SEED + i).collect();
            let journal = format!("{dir}/checkpoint.jsonl");
            let snapshots = SnapshotStore::new(format!("{dir}/snapshots"));
            let sweep_sup = Supervisor::new(mode)
                .with_fail_fast(fail_fast)
                .with_journal(&journal);
            let Some(out) = observatory::sweep_with_snapshots(
                scenario,
                scale,
                &seeds,
                &sweep_sup,
                Some(&snapshots),
            ) else {
                eprintln!("unknown sweep scenario: {scenario}");
                eprintln!("scenarios: {}", observatory::SCENARIOS.join(" "));
                std::process::exit(2);
            };
            let rep = &out.report;
            println!(
                "{scenario}: {} cells ({} ok, {} cached from {journal})",
                rep.total, rep.ok, rep.cached
            );
            let writes = [
                (format!("{dir}/aggregate.json"), out.aggregate_json()),
                (format!("{dir}/failure_report.json"), rep.to_json() + "\n"),
                (format!("{dir}/quarantine.json"), rep.quarantine_json() + "\n"),
            ];
            for (path, doc) in &writes {
                if let Err(e) = write_artifact(path, doc) {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
                println!("  wrote {path}");
            }
            finish(std::slice::from_ref(rep));
        }
        "snapshot" => {
            let mode = args.get(2).map(String::as_str).unwrap_or("");
            let usage = "usage: repro snapshot save <file> [scenario] [quick|paper] [seed] [events]\n\
                         \x20      repro snapshot restore <file> [scenario] [quick|paper] [seed]\n\
                         \x20      repro snapshot inspect <file>";
            let Some(file) = args.get(3).map(String::as_str) else {
                eprintln!("{usage}");
                std::process::exit(2);
            };
            let scenario = args.get(4).map(String::as_str).unwrap_or("incast");
            let scale = args
                .get(5)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            let seed: u64 = args
                .get(6)
                .and_then(|s| s.parse().ok())
                .unwrap_or(observatory::GOLDEN_SEED);
            match mode {
                "save" => {
                    let events: u64 =
                        args.get(7).and_then(|s| s.parse().ok()).unwrap_or(20_000);
                    let Some((mut sim, _, _)) =
                        observatory::scenario_sim(scenario, scale, seed)
                    else {
                        eprintln!("unknown snapshot scenario: {scenario}");
                        std::process::exit(2);
                    };
                    while sim.events_processed() < events && sim.step() {}
                    let bytes = sim.snapshot();
                    if let Some(parent) = std::path::Path::new(file).parent() {
                        std::fs::create_dir_all(parent).ok();
                    }
                    if let Err(e) = std::fs::write(file, &bytes) {
                        eprintln!("cannot write {file}: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "wrote {file}: {} bytes at event {} (t={} ns)",
                        bytes.len(),
                        sim.events_processed(),
                        sim.kernel.now.as_nanos(),
                    );
                }
                "restore" => {
                    let bytes = match std::fs::read(file) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("cannot read {file}: {e}");
                            std::process::exit(1);
                        }
                    };
                    let Some((mut sim, flows, horizon)) =
                        observatory::scenario_sim(scenario, scale, seed)
                    else {
                        eprintln!("unknown snapshot scenario: {scenario}");
                        std::process::exit(2);
                    };
                    if let Err(e) = sim.restore(&bytes) {
                        eprintln!("restore failed: {e}");
                        std::process::exit(1);
                    }
                    let verdict = sim.run_until_flows_done(horizon);
                    let resumed = observatory::digest(&sim.trace.observatory.to_jsonl());
                    println!(
                        "resumed {scenario}: {}/{flows} flows completed, metrics digest {resumed}",
                        sim.trace.fcts.len(),
                    );
                    // Control: the same run uninterrupted. Identical
                    // metrics prove the snapshot changed nothing.
                    let control = observatory::observe(scenario, scale, seed)
                        .expect("scenario validated above");
                    let control_digest = observatory::digest(&control.metrics_jsonl);
                    if resumed == control_digest && verdict.err().is_none() {
                        println!("MATCH: resumed run is byte-identical to the uninterrupted control");
                    } else {
                        eprintln!(
                            "MISMATCH: control digest {control_digest}, resumed {resumed}"
                        );
                        std::process::exit(1);
                    }
                }
                "inspect" => {
                    let bytes = match std::fs::read(file) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("cannot read {file}: {e}");
                            std::process::exit(1);
                        }
                    };
                    match rocc_sim::snapshot::inspect(&bytes) {
                        Ok(info) => {
                            println!("{file}: rocc-snapshot/v1");
                            println!("  seed:             {}", info.seed);
                            println!("  config digest:    {:016x}", info.config_digest);
                            println!("  sim time:         {} ns", info.now_ns);
                            println!("  events processed: {}", info.events_processed);
                            println!(
                                "  size:             {} bytes ({} body)",
                                info.total_len, info.body_len
                            );
                        }
                        Err(e) => {
                            eprintln!("{file}: invalid snapshot: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                other => {
                    eprintln!("unknown snapshot mode: {other}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        "compare" => {
            let (Some(a), Some(b)) = (args.get(2), args.get(3)) else {
                eprintln!("usage: repro compare <runA dir|metrics.jsonl> <runB dir|metrics.jsonl>");
                std::process::exit(2);
            };
            // Runs on different scheduler backends are not seed noise —
            // refuse to diff them as if they were (use `repro diverge`
            // to localize a backend disagreement instead).
            let (ba, bb) = (
                observatory::manifest_field(a, "sched_backend"),
                observatory::manifest_field(b, "sched_backend"),
            );
            if let (Some(ba), Some(bb)) = (&ba, &bb) {
                if ba != bb {
                    eprintln!(
                        "backend mismatch: run A executed on `{ba}`, run B on `{bb}` — \
                         these runs are not comparable as seed noise.\n\
                         Use `repro diverge {ba} {bb}` to localize a backend disagreement."
                    );
                    std::process::exit(1);
                }
            }
            let (sa, sb) = match (observatory::load_summary(a), observatory::load_summary(b)) {
                (Ok(sa), Ok(sb)) => (sa, sb),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            let report = observatory::compare(&sa, &sb);
            print!("{}", report.render());
            println!("{}", report.to_json());
            if !report.pass() {
                std::process::exit(1);
            }
        }
        "diverge" => {
            use rocc_experiments::diverge::{self, DivergeSpec};
            use rocc_sim::digest::BisectOutcome;
            let usage = "usage: repro diverge <specA> <specB> [scenario] [dir] [quick|paper] [seed] [max_events]\n\
                         \x20      repro diverge record <spec> <out.jsonl> [scenario] [quick|paper] [seed] [stride]\n\
                         \x20      repro diverge ledgers <a.jsonl> <b.jsonl>\n\
                         specs: heap | wheel, optionally +flip@<event> (inject an RP rate bit-flip\n\
                         after that many dispatched events); scenarios: chaos incast";
            match args.get(2).map(String::as_str) {
                Some("record") => {
                    let (Some(spec), Some(out)) = (args.get(3), args.get(4)) else {
                        eprintln!("{usage}");
                        std::process::exit(2);
                    };
                    let Some(spec) = DivergeSpec::parse(spec) else {
                        eprintln!("bad spec: {spec}\n{usage}");
                        std::process::exit(2);
                    };
                    let scenario = args.get(5).map(String::as_str).unwrap_or("chaos");
                    let scale = args
                        .get(6)
                        .and_then(|s| Scale::parse(s))
                        .unwrap_or(Scale::Quick);
                    let seed: u64 = args
                        .get(7)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(observatory::GOLDEN_SEED);
                    let stride: u64 = args
                        .get(8)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(diverge::DEFAULT_LEDGER_STRIDE);
                    match diverge::record_ledger(spec, scenario, scale, seed, stride) {
                        Ok(jsonl) => {
                            let rows = jsonl.lines().count();
                            if let Err(e) = write_artifact(out, &jsonl) {
                                eprintln!("{e}");
                                std::process::exit(1);
                            }
                            println!(
                                "wrote {out}: {rows} digest rows (stride {stride}, {} seed {seed})",
                                spec.label(),
                            );
                        }
                        Err(e) => {
                            eprintln!("{e}");
                            std::process::exit(2);
                        }
                    }
                }
                Some("ledgers") => {
                    let (Some(pa), Some(pb)) = (args.get(3), args.get(4)) else {
                        eprintln!("{usage}");
                        std::process::exit(2);
                    };
                    let read = |p: &str| {
                        std::fs::read_to_string(p).unwrap_or_else(|e| {
                            eprintln!("cannot read {p}: {e}");
                            std::process::exit(1);
                        })
                    };
                    let (ta, tb) = (read(pa), read(pb));
                    let (div, (torn_a, torn_b)) = diverge::diverge_ledgers(&ta, &tb);
                    if torn_a {
                        eprintln!("note: {pa} has a torn tail line (skipped)");
                    }
                    if torn_b {
                        eprintln!("note: {pb} has a torn tail line (skipped)");
                    }
                    match div {
                        Some(d) => {
                            println!(
                                "DIVERGED at ledger row event {} (t_a {} ns, t_b {} ns): {}",
                                d.events,
                                d.t_ns_a,
                                d.t_ns_b,
                                d.components.join(", "),
                            );
                            println!(
                                "(ledger rows bound the divergence to one stride; \
                                 run `repro diverge` on the specs to pin the exact event)"
                            );
                            std::process::exit(1);
                        }
                        None => println!("ledgers agree on every comparable row"),
                    }
                }
                Some(sa) => {
                    let Some(sb) = args.get(3).map(String::as_str) else {
                        eprintln!("{usage}");
                        std::process::exit(2);
                    };
                    let (Some(spec_a), Some(spec_b)) =
                        (DivergeSpec::parse(sa), DivergeSpec::parse(sb))
                    else {
                        eprintln!("bad spec: {sa} / {sb}\n{usage}");
                        std::process::exit(2);
                    };
                    let scenario = args.get(4).map(String::as_str).unwrap_or("chaos");
                    let dir = args.get(5).map(String::as_str).unwrap_or("diverge_out");
                    let scale = args
                        .get(6)
                        .and_then(|s| Scale::parse(s))
                        .unwrap_or(Scale::Quick);
                    let seed: u64 = args
                        .get(7)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(observatory::GOLDEN_SEED);
                    let max_events: u64 = args
                        .get(8)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(diverge::DEFAULT_MAX_EVENTS);
                    let r = match diverge::diverge(
                        spec_a, spec_b, scenario, scale, seed, max_events,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("{e}\n{usage}");
                            std::process::exit(2);
                        }
                    };
                    if r.swapped {
                        println!(
                            "(specs swapped: perturbed run is side B = {})",
                            r.spec_b.label()
                        );
                    }
                    match r.outcome {
                        BisectOutcome::Identical { events } => {
                            println!(
                                "IDENTICAL: {} and {} agree on every component digest through {events} events ({scenario}, seed {seed})",
                                r.spec_a.label(),
                                r.spec_b.label(),
                            );
                        }
                        BisectOutcome::Diverged(rep) => {
                            println!(
                                "DIVERGED ({scenario}, seed {seed}, a={} b={}): {}",
                                r.spec_a.label(),
                                r.spec_b.label(),
                                rep.summary(),
                            );
                            if let Some(e) = &rep.event_a {
                                println!("  event a: {e}");
                            }
                            if let Some(e) = &rep.event_b {
                                println!("  event b: {e}");
                            }
                            let path = format!("{dir}/divergence_report.json");
                            if let Err(e) = write_artifact(&path, &rep.to_json()) {
                                eprintln!("{e}");
                                std::process::exit(1);
                            }
                            println!("  wrote {path}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    eprintln!("{usage}");
                    std::process::exit(2);
                }
            }
        }
        "golden" => {
            let mode = args.get(2).map(String::as_str).unwrap_or("check");
            let path = args
                .get(3)
                .map(String::as_str)
                .unwrap_or("golden/observatory.json");
            match mode {
                "write" => {
                    let doc = observatory::golden_json(&observatory::golden_run());
                    if let Err(e) = write_artifact(path, &doc) {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
                "check" => match observatory::golden_check(path) {
                    Ok(msg) => println!("{msg}"),
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                },
                other => {
                    eprintln!("unknown golden mode: {other} (expected check|write)");
                    std::process::exit(2);
                }
            }
        }
        "dump" => {
            let dir = args.get(2).map(String::as_str).unwrap_or("repro_data");
            let scale = args
                .get(3)
                .and_then(|s| Scale::parse(s))
                .unwrap_or(Scale::Quick);
            match rocc_experiments::csv::dump_all(std::path::Path::new(dir), scale) {
                Ok(files) => {
                    println!("wrote {} CSV files to {dir}/:", files.len());
                    for f in files {
                        println!("  {f}");
                    }
                }
                Err(e) => {
                    eprintln!("dump failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            let mut reports = Vec::new();
            for name in all {
                reports.extend(run_one(name));
                println!();
            }
            finish(&reports);
        }
        "help" | "--help" | "-h" => {
            println!("usage: repro <experiment|all> [quick|paper] [--fail-fast|--keep-going]");
            println!("       repro dump <dir> [quick|paper]   (plot-ready CSVs)");
            println!("       repro trace <scenario|all> [dir] [quick|paper]   (telemetry timeline + BENCH_sim.json)");
            println!("       repro observe <scenario> [dir] [quick|paper] [seed]   (metrics JSONL + Perfetto trace + manifest)");
            println!("       repro profile <scenario> [dir] [quick|paper] [seed]   (phase profiler: rocc-perf-profile/v1 + Perfetto engine counters)");
            println!("       repro sweep <scenario> [dir] [quick|paper] [nseeds] [serial|parallel]   (checkpointed multi-seed campaign, resumable mid-cell)");
            println!("       repro snapshot save|restore|inspect <file> [scenario] [quick|paper] [seed] [events]   (engine snapshots by hand)");
            println!("       repro compare <runA> <runB>   (cross-run fidelity gate; refuses mixed scheduler backends)");
            println!("       repro diverge <specA> <specB> [scenario] [dir] [quick|paper] [seed]   (bisect two runs to the first divergent event)");
            println!("       repro diverge record <spec> <out.jsonl> | ledgers <a> <b>   (strided digest ledgers, offline diff)");
            println!("       repro golden [check|write] [path]   (pinned-run digest gate)");
            println!("supervised subcommands exit nonzero with a campaign-report JSON on any cell failure;");
            println!("--fail-fast stops scheduling new cells after the first failure (default: --keep-going)");
            println!("experiments: {}", all.join(" "));
            println!(
                "trace scenarios: {}",
                rocc_experiments::trace::SCENARIOS.join(" ")
            );
            println!(
                "observe scenarios: {}",
                observatory::SCENARIOS.join(" ")
            );
        }
        name => finish(&run_one(name)),
    }
}
