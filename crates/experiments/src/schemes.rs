//! Scheme registry: one enum naming every congestion-control scheme under
//! evaluation, mapped to its host/switch factory pair.

use rocc_baselines::{
    DcqcnHostCcFactory, DcqcnSwitchCcFactory, HpccHostCcFactory, HpccParams,
    HpccSwitchCcFactory, PiMarkingSwitchCcFactory, QcnHostCcFactory, QcnSwitchCcFactory,
    TimelyHostCcFactory,
};
use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::cc::{HostCcFactory, NullSwitchCcFactory, SwitchCcFactory};
use rocc_sim::prelude::SimDuration;

/// Every congestion-control scheme in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// RoCC (this paper).
    Rocc,
    /// DCQCN (Zhu et al. '15).
    Dcqcn,
    /// DCQCN with PI-controlled marking (Zhu et al. '16).
    DcqcnPi,
    /// QCN (802.1Qau).
    Qcn,
    /// TIMELY (Mittal et al. '15).
    Timely,
    /// Patched TIMELY (Zhu et al. '16): absolute-RTT steering with a
    /// unique fixed point.
    TimelyPatched,
    /// HPCC (Li et al. '19).
    Hpcc,
    /// No congestion control (PFC only).
    None,
}

impl Scheme {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Rocc => "RoCC",
            Scheme::Dcqcn => "DCQCN",
            Scheme::DcqcnPi => "DCQCN+PI",
            Scheme::Qcn => "QCN",
            Scheme::Timely => "TIMELY",
            Scheme::TimelyPatched => "TIMELY+patch",
            Scheme::Hpcc => "HPCC",
            Scheme::None => "none",
        }
    }

    /// The trio compared in the large-scale evaluation (§6.3).
    pub fn large_scale_set() -> [Scheme; 3] {
        [Scheme::Dcqcn, Scheme::Hpcc, Scheme::Rocc]
    }

    /// The full §6.1 comparison set (Fig. 11).
    pub fn comparison_set() -> [Scheme; 6] {
        [
            Scheme::Timely,
            Scheme::Qcn,
            Scheme::Dcqcn,
            Scheme::DcqcnPi,
            Scheme::Hpcc,
            Scheme::Rocc,
        ]
    }

    /// Instantiate the factory pair. `base_rtt` parameterizes HPCC's BDP
    /// window (topology-dependent; the paper's fat-tree base RTT ≈ 13 µs).
    pub fn factories(
        self,
        base_rtt: SimDuration,
    ) -> (Box<dyn HostCcFactory>, Box<dyn SwitchCcFactory>) {
        match self {
            Scheme::Rocc => (
                Box::new(RoccHostCcFactory::new()),
                Box::new(RoccSwitchCcFactory::new()),
            ),
            Scheme::Dcqcn => (
                Box::new(DcqcnHostCcFactory::default()),
                Box::new(DcqcnSwitchCcFactory::default()),
            ),
            Scheme::DcqcnPi => (
                Box::new(DcqcnHostCcFactory::default()),
                Box::new(PiMarkingSwitchCcFactory::default()),
            ),
            Scheme::Qcn => (
                Box::new(QcnHostCcFactory::default()),
                Box::new(QcnSwitchCcFactory::default()),
            ),
            Scheme::Timely => (
                Box::new(TimelyHostCcFactory::default()),
                Box::new(NullSwitchCcFactory),
            ),
            Scheme::TimelyPatched => (
                Box::new(TimelyHostCcFactory {
                    params: Some(rocc_baselines::TimelyParams::patched()),
                }),
                Box::new(NullSwitchCcFactory),
            ),
            Scheme::Hpcc => (
                Box::new(HpccHostCcFactory {
                    params: Some(HpccParams {
                        base_rtt,
                        ..Default::default()
                    }),
                }),
                Box::new(HpccSwitchCcFactory),
            ),
            Scheme::None => (
                Box::new(rocc_sim::cc::NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::{BitRate, FlowId};

    #[test]
    fn all_schemes_instantiate() {
        for s in Scheme::comparison_set()
            .into_iter()
            .chain([Scheme::TimelyPatched])
        {
            let (h, sw) = s.factories(SimDuration::from_micros(12));
            let hc = h.make(FlowId(0), BitRate::from_gbps(40));
            // Every scheme starts a flow at a positive rate.
            assert!(hc.decision().rate.as_bps() > 0, "{}", s.name());
            let _ = sw.make(
                rocc_sim::prelude::CpId {
                    node: rocc_sim::prelude::NodeId(0),
                    port: rocc_sim::prelude::PortId(0),
                },
                BitRate::from_gbps(40),
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Scheme::Rocc.name(), "RoCC");
        assert_eq!(Scheme::DcqcnPi.name(), "DCQCN+PI");
        assert_eq!(Scheme::large_scale_set().map(|s| s.name()), ["DCQCN", "HPCC", "RoCC"]);
    }
}
