//! Chaos experiments: congestion control under injected faults.
//!
//! The paper's robustness claims (§3, §5) are qualitative: RoCC keeps
//! working when the feedback loop itself is damaged, because CNPs are
//! regenerated every T from switch state (nothing to resynchronize) and
//! the RP's fast recovery bounds the damage of any lost CNP to one
//! recovery-timer period. These experiments quantify that by driving the
//! fault-injection layer of `rocc-sim` ([`FaultPlan`]):
//!
//! * [`cnp_loss_sweep`] — RoCC vs DCQCN on the dumbbell while 0.1–5% of
//!   CNPs are dropped at random (data packets untouched). Reports flow
//!   completions and FCT inflation per loss rate.
//! * [`cnp_blackout`] — a single RoCC flow is throttled by competing
//!   traffic, then the competitors stop at the same instant a total CNP
//!   blackout begins. Only fast recovery can restore the rate; the
//!   experiment records the RP rate trajectory back to line rate.

use crate::micro::{self, tail_stats};
use crate::observatory::digest;
use crate::parallel::ExecMode;
use crate::scenarios;
use crate::schemes::Scheme;
use crate::supervisor::{CampaignReport, NoCache, Supervisor};
use crate::Scale;
use rocc_sim::prelude::*;

/// CNP loss probabilities swept by [`cnp_loss_sweep`] (0 = fault-free
/// baseline).
pub const CNP_LOSS_GRID: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// One (scheme, CNP-loss-rate) cell of the chaos sweep.
#[derive(Debug)]
pub struct ChaosCell {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Per-CNP drop probability injected on every link.
    pub cnp_loss: f64,
    /// Finite flows offered.
    pub flows: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Mean flow completion time (ms) over completed flows.
    pub mean_fct_ms: f64,
    /// Worst flow completion time (ms).
    pub max_fct_ms: f64,
    /// Mean per-flow goodput (bits/s) over completed flows.
    pub mean_goodput_bps: f64,
    /// Control packets the fault layer dropped during the run.
    pub ctrl_lost: u64,
}

/// The simulator config one CNP-loss cell runs (shared with the journal
/// key so the key hashes exactly what the cell sees).
fn cnp_loss_sim_config(loss: f64) -> SimConfig {
    SimConfig {
        fault_plan: FaultPlan::default().with_loss(FaultTarget::Cnp, loss),
        ..SimConfig::default()
    }
}

/// One `(scheme, loss)` cell of the CNP-loss sweep. Incompletions within
/// the horizon are the *data* of this experiment, so a deadline verdict
/// still measures; only the runtime budget guards (runaway/livelocked
/// cell) fail it.
fn cnp_loss_cell(
    scheme: Scheme,
    loss: f64,
    n: usize,
    size: u64,
    horizon: SimTime,
) -> Result<ChaosCell, SimError> {
    let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
    let mut sim = micro::sim_with(d.topo, scheme, 7, cnp_loss_sim_config(loss));
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    let verdict = sim.run_until_flows_done(horizon);
    if let Some(e) = verdict.err() {
        if e.is_budget() {
            return Err(e.clone());
        }
    }
    let fcts: Vec<f64> = sim
        .trace
        .fcts
        .iter()
        .map(|r| r.fct().as_secs_f64())
        .collect();
    let completed = fcts.len();
    let mean = if completed > 0 {
        fcts.iter().sum::<f64>() / completed as f64
    } else {
        0.0
    };
    let max = fcts.iter().cloned().fold(0.0, f64::max);
    let goodput = if mean > 0.0 {
        fcts.iter().map(|f| size as f64 * 8.0 / f).sum::<f64>() / completed as f64
    } else {
        0.0
    };
    Ok(ChaosCell {
        scheme,
        cnp_loss: loss,
        flows: n,
        completed,
        mean_fct_ms: mean * 1e3,
        max_fct_ms: max * 1e3,
        mean_goodput_bps: goodput,
        ctrl_lost: sim.trace.faults.ctrl_lost,
    })
}

/// RoCC vs DCQCN on the N-sender 40G dumbbell while CNPs are dropped
/// uniformly at random with each probability in [`CNP_LOSS_GRID`]. Every
/// sender ships one finite flow; the run ends when all complete or the
/// horizon expires. Data packets are never touched, so FCT inflation and
/// incompletions are attributable to the damaged feedback loop alone.
///
/// Runs under a default keep-going supervisor; failed cells (budget
/// guards, panics) are dropped from the returned grid. Callers that need
/// the failure detail use [`cnp_loss_sweep_supervised`].
pub fn cnp_loss_sweep(scale: Scale) -> Vec<ChaosCell> {
    cnp_loss_sweep_supervised(scale, &Supervisor::new(ExecMode::Parallel))
        .0
        .into_iter()
        .flatten()
        .collect()
}

/// [`cnp_loss_sweep`] under an explicit [`Supervisor`]: per-cell panic
/// isolation and typed outcomes; the grid comes back in input order with
/// failed cells as `None`, plus the campaign report.
pub fn cnp_loss_sweep_supervised(
    scale: Scale,
    sup: &Supervisor,
) -> (Vec<Option<ChaosCell>>, CampaignReport) {
    let (n, size, horizon) = match scale {
        Scale::Quick => (8usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (16, 10_000_000, SimTime::from_millis(1000)),
    };
    let cells: Vec<(String, (Scheme, f64))> = [Scheme::Rocc, Scheme::Dcqcn]
        .iter()
        .flat_map(|&scheme| CNP_LOSS_GRID.iter().map(move |&loss| (scheme, loss)))
        .map(|(scheme, loss)| {
            let hash = digest(&format!(
                "{:?}",
                SimConfig {
                    seed: 0,
                    ..cnp_loss_sim_config(loss)
                }
            ));
            (
                format!("chaos/cnp_loss/{}/p{:?}/{}", scheme.name(), loss, hash),
                (scheme, loss),
            )
        })
        .collect();
    let campaign = sup.run(cells, &NoCache, |&(scheme, loss)| {
        cnp_loss_cell(scheme, loss, n, size, horizon)
    });
    let report = campaign.report();
    (campaign.into_results(), report)
}

/// Output of [`cnp_blackout`].
#[derive(Debug)]
pub struct BlackoutResult {
    /// RP rate of the surviving flow (bits/s) over the whole run.
    pub rate: Vec<Sample>,
    /// Mean RP rate (Gb/s) over the throttled window just before the
    /// blackout (expected ≈ the 10 Gb/s fair share of 4 flows).
    pub pre_blackout_gbps: f64,
    /// Mean RP rate (Gb/s) over the tail after the blackout began
    /// (expected = 40 Gb/s line rate: fast recovery uninstalled the
    /// limiter with zero CNP help).
    pub post_recovery_gbps: f64,
    /// When the competitors stopped and the CNP blackout began.
    pub blackout_start: SimTime,
    /// CNPs destroyed by the blackout.
    pub cnps_lost: u64,
}

/// Total-CNP-blackout recovery: four RoCC flows share the 40G dumbbell,
/// so flow 0 is held near 10 Gb/s by CNPs. At `blackout_start` flows 1–3
/// stop *and* every CNP on every link is destroyed from then on. No
/// feedback can ever tell flow 0 the bottleneck freed up; only the RP's
/// fast-recovery doubling (Alg. 2) can lift it back to line rate. The
/// paper's claim is that it does, within a handful of 100 µs periods.
pub fn cnp_blackout(scale: Scale) -> BlackoutResult {
    let (blackout_start, horizon) = match scale {
        Scale::Quick => (SimTime::from_millis(8), SimTime::from_millis(16)),
        Scale::Paper => (SimTime::from_millis(20), SimTime::from_millis(40)),
    };
    let d = scenarios::dumbbell(4, BitRate::from_gbps(40));
    let cfg = SimConfig {
        fault_plan: FaultPlan::default().with_loss_window(
            FaultTarget::Cnp,
            1.0,
            blackout_start,
            SimTime::MAX,
        ),
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.trace.sample_period = Some(SimDuration::from_micros(100));
    sim.trace.watch_cc_rate(FlowId(0));
    for (i, &s) in d.senders.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size: u64::MAX,
            start: SimTime::ZERO,
            offered: None,
        });
        if i > 0 {
            sim.stop_flow_at(FlowId(i as u64), blackout_start);
        }
    }
    sim.run_until(horizon);
    let rate = std::mem::take(&mut sim.trace.cc_rate_series[0]);
    // Pre: the converged tail of the contended phase. Post: leave a few
    // milliseconds for the queue to drain and recovery to double up.
    let pre_from = SimTime::from_nanos(blackout_start.as_nanos() / 2);
    let pre: Vec<Sample> = rate.iter().filter(|s| s.t < blackout_start).cloned().collect();
    let (pre_mean, _) = tail_stats(&pre, pre_from);
    let post_from =
        SimTime::from_nanos((blackout_start.as_nanos() + horizon.as_nanos()) / 2);
    let (post_mean, _) = tail_stats(&rate, post_from);
    BlackoutResult {
        rate,
        pre_blackout_gbps: pre_mean / 1e9,
        post_recovery_gbps: post_mean / 1e9,
        blackout_start,
        cnps_lost: sim.trace.faults.ctrl_lost,
    }
}

/// One scheme's row in the [`pause_storm`] comparison.
#[derive(Debug)]
pub struct PauseStormCell {
    /// The scheme under test (`None` = uncontrolled line-rate senders).
    pub scheme: Option<Scheme>,
    /// Finite flows offered.
    pub flows: usize,
    /// Flows completed within the horizon.
    pub completed: usize,
    /// Largest per-port fraction of sanitizer audits spent PFC-paused.
    pub max_pause_fraction: f64,
    /// Deepest pause wait-for chain the watchdog observed.
    pub max_pause_depth: u32,
    /// Flows attributed as pause victims (paused behind congestion their
    /// own path never causes).
    pub victims: Vec<FlowId>,
    /// FCT of the innocent cross-traffic flow, in ms (0 if incomplete).
    pub victim_fct_ms: f64,
}

/// PFC pause-storm comparison on a two-switch trunk: an incast overloads
/// one receiver while an innocent flow to an idle receiver shares the
/// trunk. The PFC watchdog measures how much of the run each port spends
/// paused and attributes victims. RoCC's switch-driven rate control keeps
/// queues near the reference and the trunk largely unpaused; DCQCN's
/// slower ECN loop leans on PFC and collateral-damages the innocent flow;
/// uncontrolled senders are the worst case.
pub fn pause_storm(scale: Scale) -> Vec<PauseStormCell> {
    let (incast, size, horizon) = match scale {
        Scale::Quick => (4usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (8, 10_000_000, SimTime::from_millis(1000)),
    };
    let schemes: [Option<Scheme>; 3] = [None, Some(Scheme::Rocc), Some(Scheme::Dcqcn)];
    let mut out = Vec::new();
    for scheme in schemes {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a", NodeRole::Switch);
        let t = b.add_switch("b", NodeRole::Switch);
        b.connect(a, t, BitRate::from_gbps(40), SimDuration::from_micros(1));
        let mut senders = Vec::new();
        for i in 0..=incast {
            let h = b.add_host(format!("h{i}"));
            b.connect(h, a, BitRate::from_gbps(10), SimDuration::from_micros(1));
            senders.push(h);
        }
        let r1 = b.add_host("r1");
        let r2 = b.add_host("r2");
        b.connect(t, r1, BitRate::from_gbps(10), SimDuration::from_micros(1));
        b.connect(t, r2, BitRate::from_gbps(10), SimDuration::from_micros(1));
        // Paper-default PFC thresholds: a scheme that keeps queues near its
        // reference never trips them; one that lets queues run away leans
        // on PFC and collateral-damages the trunk.
        let cfg = SimConfig::default();
        let mut sim = match scheme {
            Some(s) => micro::sim_with(b.build(), s, 7, cfg),
            None => Sim::new(
                b.build(),
                cfg,
                Box::new(NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            ),
        };
        sim.enable_sanitizer_with_period(SimDuration::from_micros(2));
        let victim_id = FlowId(incast as u64);
        for (i, &s) in senders.iter().enumerate() {
            let dst = if i < incast { r1 } else { r2 };
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let _ = sim.run_until_flows_done(horizon);
        let report = sim.sanitizer().report();
        let victim_fct_ms = sim
            .trace
            .fcts
            .iter()
            .find(|r| r.flow == victim_id)
            .map(|r| r.fct().as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        out.push(PauseStormCell {
            scheme,
            flows: senders.len(),
            completed: sim.trace.fcts.len(),
            max_pause_fraction: report.max_pause_fraction,
            max_pause_depth: report.max_pause_depth,
            victims: report.victims,
            victim_fct_ms,
        });
    }
    out
}

/// One scheme's outcome on the deadlock-prone PFC ring ([`deadlock_probe`]).
#[derive(Debug)]
pub struct DeadlockProbeCell {
    /// Scheme name (`"none"` = uncontrolled line-rate senders).
    pub scheme: String,
    /// Whether all flows completed.
    pub completed: bool,
    /// The verdict's JSON rendering (carries the pause cycle on deadlock).
    pub verdict_json: String,
    /// Length of the confirmed pause cycle (0 if none).
    pub cycle_len: usize,
    /// Simulated time at which the watchdog confirmed the deadlock, in µs
    /// (0 if no deadlock).
    pub detected_at_us: f64,
}

/// PFC deadlock probe: five switches in a ring, one host each, every host
/// sending two hops clockwise — the canonical cyclic-buffer-dependency
/// topology. With uncontrolled senders the ring deadlocks and the watchdog
/// names the 5-node pause cycle. Congestion control changes the outcome by
/// keeping queues below the PFC thresholds.
pub fn deadlock_probe() -> Vec<DeadlockProbeCell> {
    let mut out = Vec::new();
    let cases: [(&str, Option<Scheme>); 3] = [
        ("none", None),
        ("rocc", Some(Scheme::Rocc)),
        ("dcqcn", Some(Scheme::Dcqcn)),
    ];
    for (name, scheme) in cases {
        let mut b = TopologyBuilder::new();
        let n = 5usize;
        let mut sws = Vec::new();
        for i in 0..n {
            sws.push(b.add_switch(format!("s{i}"), NodeRole::Switch));
        }
        for i in 0..n {
            b.connect(
                sws[i],
                sws[(i + 1) % n],
                BitRate::from_gbps(40),
                SimDuration::from_micros(1),
            );
        }
        let mut hosts = Vec::new();
        for &s in &sws {
            let h = b.add_host(format!("h{}", hosts.len()));
            b.connect(h, s, BitRate::from_gbps(40), SimDuration::from_micros(1));
            hosts.push(h);
        }
        let cfg = SimConfig {
            pfc: PfcConfig {
                xoff_40g: kb(20),
                xoff_100g: kb(20),
                resume_frac: 0.1,
            },
            ..SimConfig::default()
        };
        let mut sim = match scheme {
            Some(s) => micro::sim_with(b.build(), s, 7, cfg),
            None => Sim::new(
                b.build(),
                cfg,
                Box::new(NullHostCcFactory),
                Box::new(NullSwitchCcFactory),
            ),
        };
        sim.enable_sanitizer();
        for i in 0..n {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: hosts[i],
                dst: hosts[(i + 2) % n],
                size: 20_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
        let (cycle_len, detected_at_us) = match verdict.err() {
            Some(SimError::PfcDeadlock {
                cycle, detected_at, ..
            }) => (cycle.len(), detected_at.as_nanos() as f64 / 1e3),
            _ => (0, 0.0),
        };
        out.push(DeadlockProbeCell {
            scheme: name.to_string(),
            completed: verdict.is_complete(),
            verdict_json: verdict.to_json(),
            cycle_len,
            detected_at_us,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_storm_orders_schemes_by_pause_pressure() {
        let cells = pause_storm(Scale::Quick);
        let by = |s: Option<Scheme>| cells.iter().find(|c| c.scheme == s).unwrap();
        let rocc = by(Some(Scheme::Rocc));
        let none = by(None);
        assert_eq!(rocc.completed, rocc.flows, "RoCC must complete: {rocc:?}");
        assert!(
            rocc.max_pause_fraction <= none.max_pause_fraction,
            "RoCC must not pause more than uncontrolled senders:\n{rocc:?}\n{none:?}"
        );
        assert!(
            none.victims.contains(&FlowId(none.flows as u64 - 1)),
            "uncontrolled incast must victimize the innocent flow: {none:?}"
        );
    }

    #[test]
    fn deadlock_probe_confirms_the_uncontrolled_ring_deadlock() {
        let cells = deadlock_probe();
        let none = cells.iter().find(|c| c.scheme == "none").unwrap();
        assert!(!none.completed);
        assert_eq!(none.cycle_len, 5, "{none:?}");
        assert!(none.verdict_json.contains("pfc_deadlock"), "{none:?}");
    }

    #[test]
    fn zero_loss_cell_is_faultless_and_complete() {
        let cells = cnp_loss_sweep(Scale::Quick);
        let base = cells
            .iter()
            .find(|c| c.scheme == Scheme::Rocc && c.cnp_loss == 0.0)
            .unwrap();
        assert_eq!(base.completed, base.flows);
        assert_eq!(base.ctrl_lost, 0, "no faults may fire at p = 0");
        // Every RoCC cell up to 1% CNP loss still completes all flows.
        for c in cells.iter().filter(|c| c.scheme == Scheme::Rocc) {
            if c.cnp_loss <= 0.01 {
                assert_eq!(
                    c.completed, c.flows,
                    "RoCC lost flows at {}% CNP loss",
                    c.cnp_loss * 100.0
                );
            }
        }
    }

    #[test]
    fn blackout_recovers_to_line_rate() {
        let r = cnp_blackout(Scale::Quick);
        assert!(r.cnps_lost > 0, "blackout must destroy CNPs");
        assert!(
            r.pre_blackout_gbps < 20.0,
            "flow 0 not throttled pre-blackout: {:.1} Gb/s",
            r.pre_blackout_gbps
        );
        assert!(
            r.post_recovery_gbps > 35.0,
            "fast recovery failed to restore line rate: {:.1} Gb/s",
            r.post_recovery_gbps
        );
    }
}
