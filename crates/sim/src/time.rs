//! Simulated time.
//!
//! The simulator runs on a virtual clock with nanosecond resolution. At the
//! link speeds the RoCC paper evaluates (10–100 Gb/s) a full-MTU packet
//! serializes in 80 ns–800 ns, so nanoseconds give ample headroom while a
//! `u64` covers ~584 years of virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(40).as_nanos(), 40_000);
        assert_eq!(SimDuration::from_secs_f64(1.5e-6).as_nanos(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        let d = t - SimTime::from_micros(10);
        assert_eq!(d.as_nanos(), 5_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(40)), "40.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_millis(1_000_000));
    }
}
