//! Q47.16 fixed-point arithmetic.
//!
//! The paper notes the simulation model gives the fair rate "fixed point
//! precision to mimic hardware implementation" (§6), and that RoCC "uses
//! base-2 numbers in multiplication and division operations, which are
//! efficiently implemented using bit shift operations" (§3.2). This module
//! is that datapath: a signed 64-bit value with 16 fractional bits, where
//! halving, doubling, and the auto-tuner's power-of-two gain scaling are
//! exact shifts.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// Number of fractional bits.
pub const FRAC_BITS: u32 = 16;
/// Scale factor 2^16.
pub const ONE_RAW: i64 = 1 << FRAC_BITS;

/// A Q47.16 fixed-point number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Fx(i64);

impl Fx {
    /// Zero.
    pub const ZERO: Fx = Fx(0);
    /// One.
    pub const ONE: Fx = Fx(ONE_RAW);

    /// From an integer, saturating at the Q47.16 range limits. A hardware
    /// register clips at its rails rather than wrapping, so a rate or gain
    /// that exceeds the representable range pins to the extreme instead of
    /// silently corrupting the datapath.
    pub const fn from_int(v: i64) -> Fx {
        Fx(v.saturating_mul(ONE_RAW))
    }

    /// From a float, rounding to the nearest representable value. Intended
    /// for configuration-time constants (gains), not the datapath.
    pub fn from_f64(v: f64) -> Fx {
        assert!(v.is_finite(), "invalid fixed-point source {v}");
        Fx((v * ONE_RAW as f64).round() as i64)
    }

    /// Truncate toward negative infinity to an integer (a hardware shift).
    pub const fn floor_int(self) -> i64 {
        self.0 >> FRAC_BITS
    }

    /// Round to nearest integer.
    pub const fn round_int(self) -> i64 {
        (self.0 + (ONE_RAW / 2)) >> FRAC_BITS
    }

    /// As a float (reporting only).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Raw representation (tests).
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Rebuild from a raw representation captured with [`Fx::raw`]
    /// (exact checkpoint/restore of register state).
    pub const fn from_raw(raw: i64) -> Fx {
        Fx(raw)
    }

    /// Multiply by an integer, saturating (hardware-register semantics).
    pub const fn mul_int(self, v: i64) -> Fx {
        Fx(self.0.saturating_mul(v))
    }

    /// Fixed × fixed multiply (single rounding step, as a hardware
    /// multiplier with a truncating shifter would).
    pub const fn mul(self, other: Fx) -> Fx {
        Fx(((self.0 as i128 * other.0 as i128) >> FRAC_BITS) as i64)
    }

    /// Divide by 2^k (arithmetic shift — the auto-tuner's gain scaling).
    pub const fn shr(self, k: u32) -> Fx {
        Fx(self.0 >> k)
    }

    /// Multiply by 2^k (shift), saturating toward the sign. An unchecked
    /// shift panics in debug and wraps in release once `k` exceeds the
    /// headroom above the value's top bit; a hardware barrel shifter clips
    /// at the register rails instead.
    pub const fn shl(self, k: u32) -> Fx {
        if self.0 == 0 {
            return Fx(0);
        }
        // Bits of headroom before the shift reaches the sign bit.
        let headroom = if self.0 > 0 {
            self.0.leading_zeros() - 1
        } else {
            (!self.0).leading_zeros() - 1
        };
        if k > headroom {
            if self.0 > 0 {
                Fx(i64::MAX)
            } else {
                Fx(i64::MIN)
            }
        } else {
            Fx(self.0 << k)
        }
    }

    /// Halve (MD fast path, Alg. 1 line 5).
    pub const fn halved(self) -> Fx {
        self.shr(1)
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp_fx(self, lo: Fx, hi: Fx) -> Fx {
        if self < lo {
            lo
        } else if self > hi {
            hi
        } else {
            self
        }
    }
}

impl Add for Fx {
    type Output = Fx;
    fn add(self, rhs: Fx) -> Fx {
        Fx(self.0 + rhs.0)
    }
}

impl Sub for Fx {
    type Output = Fx;
    fn sub(self, rhs: Fx) -> Fx {
        Fx(self.0 - rhs.0)
    }
}

impl Neg for Fx {
    type Output = Fx;
    fn neg(self) -> Fx {
        Fx(-self.0)
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        assert_eq!(Fx::from_int(4000).floor_int(), 4000);
        assert_eq!(Fx::from_int(-3).floor_int(), -3);
    }

    #[test]
    fn float_conversion_accuracy() {
        let a = Fx::from_f64(0.3);
        assert!((a.to_f64() - 0.3).abs() < 1e-4);
        let b = Fx::from_f64(1.5);
        assert_eq!(b.raw(), 3 * ONE_RAW / 2);
    }

    #[test]
    fn shifts_are_exact_powers_of_two() {
        let v = Fx::from_int(4000);
        assert_eq!(v.halved(), Fx::from_int(2000));
        assert_eq!(v.shr(5), Fx::from_int(125));
        assert_eq!(Fx::from_int(125).shl(5), v);
    }

    #[test]
    fn mul_int_and_fixed() {
        let alpha = Fx::from_f64(0.3);
        // 0.3 * 100 = 30 (within quantization).
        assert!((alpha.mul_int(100).to_f64() - 30.0).abs() < 0.01);
        let x = Fx::from_f64(1.5).mul(Fx::from_f64(2.0));
        assert_eq!(x, Fx::from_f64(3.0));
    }

    #[test]
    fn rounding_behaviour() {
        assert_eq!(Fx::from_f64(2.4).round_int(), 2);
        assert_eq!(Fx::from_f64(2.6).round_int(), 3);
        assert_eq!(Fx::from_f64(-0.6).floor_int(), -1);
    }

    #[test]
    fn clamp() {
        let lo = Fx::from_int(10);
        let hi = Fx::from_int(4000);
        assert_eq!(Fx::from_int(5).clamp_fx(lo, hi), lo);
        assert_eq!(Fx::from_int(9000).clamp_fx(lo, hi), hi);
        assert_eq!(Fx::from_int(77).clamp_fx(lo, hi), Fx::from_int(77));
    }

    #[test]
    fn from_int_saturates_at_the_rails() {
        // Largest exactly representable integer: i64::MAX >> 16.
        let max_int = i64::MAX >> FRAC_BITS;
        assert_eq!(Fx::from_int(max_int).raw(), max_int << FRAC_BITS);
        // One past it would wrap with an unchecked shift; it must pin.
        assert_eq!(Fx::from_int(max_int + 1), Fx(i64::MAX));
        assert_eq!(Fx::from_int(i64::MAX), Fx(i64::MAX));
        assert_eq!(Fx::from_int(i64::MIN), Fx(i64::MIN));
        let min_int = i64::MIN >> FRAC_BITS;
        assert_eq!(Fx::from_int(min_int).raw(), min_int << FRAC_BITS);
    }

    #[test]
    fn mul_int_saturates_at_the_rails() {
        let big = Fx::from_int(1 << 40);
        assert_eq!(big.mul_int(1 << 30), Fx(i64::MAX));
        assert_eq!(big.mul_int(-(1 << 30)), Fx(i64::MIN));
        assert_eq!((-big).mul_int(1 << 30), Fx(i64::MIN));
        // Normal range is untouched.
        assert_eq!(Fx::from_int(3).mul_int(7), Fx::from_int(21));
        assert_eq!(Fx::from_int(-3).mul_int(7), Fx::from_int(-21));
    }

    #[test]
    fn shl_saturates_toward_the_sign() {
        assert_eq!(Fx::ZERO.shl(63), Fx::ZERO);
        assert_eq!(Fx::ONE.shl(2), Fx::from_int(4));
        // i64::MAX has zero headroom: any shift pins.
        assert_eq!(Fx(i64::MAX).shl(1), Fx(i64::MAX));
        assert_eq!(Fx(i64::MIN).shl(1), Fx(i64::MIN));
        // A shift count past the word size must not be UB either.
        assert_eq!(Fx::ONE.shl(200), Fx(i64::MAX));
        assert_eq!((-Fx::ONE).shl(200), Fx(i64::MIN));
        // Exactly-at-headroom shifts are still exact.
        assert_eq!(Fx(1).shl(62).raw(), 1i64 << 62);
        assert_eq!(Fx(-1).shl(63).raw(), i64::MIN);
        // Round trip with shr in the normal range stays lossless.
        assert_eq!(Fx::from_int(125).shl(5).shr(5), Fx::from_int(125));
    }

    #[test]
    fn arithmetic() {
        let a = Fx::from_f64(1.25);
        let b = Fx::from_f64(0.75);
        assert_eq!(a + b, Fx::from_int(2));
        assert_eq!(a - b, Fx::from_f64(0.5));
        assert_eq!(-a, Fx::from_f64(-1.25));
    }
}
