//! Edge cases of the simulator mechanics: PFC semantics, control-queue
//! priority, host pause behaviour, timers, windows, and tail-loss recovery.

use rocc_sim::cc::{
    AckEvent, HostCc, HostCcCtx, HostCcFactory, NullHostCcFactory, NullSwitchCcFactory,
    RateDecision,
};
use rocc_sim::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId, NodeId, PortId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    let (port, _) = b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst, sw, port)
}

#[test]
fn unlimited_buffer_never_pauses_or_drops() {
    let (topo, srcs, dst, _, _) = dumbbell(8, 10);
    let mut cfg = SimConfig::default();
    cfg.buffer_mode = BufferMode::Unlimited;
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 3_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(200)).assert_complete();
    assert_eq!(sim.trace.drops, 0);
    assert!(sim.trace.pfc_events.is_empty());
}

#[test]
fn pfc_resume_follows_pause_and_traffic_completes() {
    // Heavy incast → pauses must be matched by resumes (flows finish, so
    // every paused sender must have been released).
    let (topo, srcs, dst, _, _) = dumbbell(8, 10);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 2_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(200)).assert_complete();
    assert!(
        !sim.trace.pfc_events.is_empty(),
        "8×10G into 10G with 16 MB of data must pause"
    );
    // Completion despite pauses proves resume works; and pauses happened
    // on the switch (the only node with ingress accounting here).
    for e in &sim.trace.pfc_events {
        assert!(sim.topo().node(e.node).role.is_switch());
    }
}

/// Host CC that holds a fixed window of exactly one packet.
struct OnePacketWindow;

impl HostCc for OnePacketWindow {
    fn decision(&self) -> RateDecision {
        RateDecision {
            rate: BitRate::from_gbps(40),
            window_bytes: Some(1), // below one packet: the engine must
                                   // still admit one when nothing in flight
        }
    }
}

struct OnePacketWindowFactory;

impl HostCcFactory for OnePacketWindowFactory {
    fn make(&self, _f: FlowId, _r: BitRate) -> Box<dyn HostCc> {
        Box::new(OnePacketWindow)
    }
}

#[test]
fn tiny_window_cannot_deadlock() {
    let (topo, srcs, dst, _, _) = dumbbell(1, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(OnePacketWindowFactory),
        Box::new(NullSwitchCcFactory),
    );
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: srcs[0],
        dst,
        size: 50_000,
        start: SimTime::ZERO,
        offered: None,
    });
    assert!(
        sim.run_until_flows_done(SimTime::from_millis(100)).is_complete(),
        "sub-MTU window must still make progress one packet at a time"
    );
    // Stop-and-wait: FCT is dominated by ~50 RTTs.
    let fct = sim.trace.fcts[0].fct();
    assert!(fct.as_nanos() > 50 * 4_000, "FCT {fct} too fast for stop-and-wait");
}

/// Host CC that counts how often its timer fires, re-arming each time,
/// and cancels after 3 fires.
struct CountingTimerCc {
    fires: Arc<AtomicU64>,
    armed: bool,
}

impl HostCc for CountingTimerCc {
    fn decision(&self) -> RateDecision {
        RateDecision::line_rate(BitRate::from_gbps(40))
    }

    fn on_ack(&mut self, ctx: &mut HostCcCtx, _ack: AckEvent) {
        if !self.armed {
            self.armed = true;
            ctx.set_timer(0, SimDuration::from_micros(50));
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {
        assert_eq!(token, 0);
        let n = self.fires.fetch_add(1, Ordering::Relaxed) + 1;
        if n < 3 {
            ctx.set_timer(0, SimDuration::from_micros(50));
        }
        // After 3 fires: not re-armed → no further events.
    }
}

struct CountingTimerFactory(Arc<AtomicU64>);

impl HostCcFactory for CountingTimerFactory {
    fn make(&self, _f: FlowId, _r: BitRate) -> Box<dyn HostCc> {
        Box::new(CountingTimerCc {
            fires: self.0.clone(),
            armed: false,
        })
    }
}

#[test]
fn cc_timers_fire_rearm_and_stop() {
    let fires = Arc::new(AtomicU64::new(0));
    let (topo, srcs, dst, _, _) = dumbbell(1, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(CountingTimerFactory(fires.clone())),
        Box::new(NullSwitchCcFactory),
    );
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: srcs[0],
        dst,
        size: u64::MAX,
        start: SimTime::ZERO,
        offered: Some(BitRate::from_gbps(1)),
    });
    sim.run_until(SimTime::from_millis(5));
    assert_eq!(
        fires.load(Ordering::Relaxed),
        3,
        "timer must fire exactly 3 times (armed once, re-armed twice)"
    );
}

#[test]
fn ecmp_spreads_fat_tree_flows_across_trunks() {
    // Two parallel trunks between two switches; many flows must use both.
    let mut b = TopologyBuilder::new();
    let s0 = b.add_switch("s0", NodeRole::EdgeSwitch);
    let s1 = b.add_switch("s1", NodeRole::EdgeSwitch);
    let (t0, _) = b.connect(s0, s1, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let (t1, _) = b.connect(s0, s1, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let dst = b.add_host("dst");
    b.connect(dst, s1, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..8 {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, s0, BitRate::from_gbps(40), SimDuration::from_micros(1));
        srcs.push(h);
    }
    let topo = b.build();
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 500_000,
            start: SimTime::ZERO,
            offered: Some(BitRate::from_gbps(4)),
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
    let (_, tx0) = sim.switch(s0).snapshot(t0);
    let (_, tx1) = sim.switch(s0).snapshot(t1);
    assert!(tx0 > 0 && tx1 > 0, "both trunks must carry data: {tx0} / {tx1}");
}

#[test]
fn tail_loss_recovers_via_rto() {
    // Tiny tail-drop buffer with a single huge burst: the *last* packets
    // of the flow can be dropped with no later packet to trigger a NACK —
    // only the RTO can recover. Completion proves the timeout path works.
    let (topo, srcs, dst, _, _) = dumbbell(4, 10);
    let mut cfg = SimConfig::default();
    cfg.buffer_mode = BufferMode::LossyTailDrop { limit_bytes: 8_000 };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 100_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    assert!(
        sim.run_until_flows_done(SimTime::from_millis(1000)).is_complete(),
        "flows stuck: drops={} retx={}",
        sim.trace.drops,
        sim.trace.retx_bytes
    );
    assert!(sim.trace.drops > 0);
    for i in 0..4 {
        assert_eq!(sim.trace.delivered_bytes(FlowId(i)), 100_000);
    }
}

#[test]
fn acks_flow_even_while_data_is_pfc_paused() {
    // Bidirectional setup: A sends bulk to B while B sends bulk to A.
    // When B's uplink is paused for data, B's ACKs (control class) keep
    // flowing so A's transport never stalls on feedback.
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let a = b.add_host("a");
    let c = b.add_host("c");
    let bb = b.add_host("b");
    for h in [a, c, bb] {
        b.connect(h, sw, BitRate::from_gbps(10), SimDuration::from_micros(1));
    }
    let topo = b.build();
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    // Two senders incast b (drives PFC pauses toward a and c), while b
    // itself sends data back to a.
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: a,
        dst: bb,
        size: 3_000_000,
        start: SimTime::ZERO,
        offered: None,
    });
    sim.add_flow(FlowSpec {
        id: FlowId(1),
        src: c,
        dst: bb,
        size: 3_000_000,
        start: SimTime::ZERO,
        offered: None,
    });
    sim.add_flow(FlowSpec {
        id: FlowId(2),
        src: bb,
        dst: a,
        size: 3_000_000,
        start: SimTime::ZERO,
        offered: None,
    });
    sim.run_until_flows_done(SimTime::from_millis(300)).assert_complete();
    assert!(!sim.trace.pfc_events.is_empty(), "incast must pause");
    assert_eq!(sim.trace.drops, 0);
    assert_eq!(sim.trace.fcts.len(), 3);
}

#[test]
fn zero_size_edge_flows() {
    // A 1-byte flow completes with a sane FCT.
    let (topo, srcs, dst, _, _) = dumbbell(1, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    sim.add_flow(FlowSpec {
        id: FlowId(0),
        src: srcs[0],
        dst,
        size: 1,
        start: SimTime::ZERO,
        offered: None,
    });
    sim.run_until_flows_done(SimTime::from_millis(10)).assert_complete();
    let fct = sim.trace.fcts[0].fct();
    // Two 1 µs hops + store-and-forward of a 49 B frame: just over 2 µs.
    assert!(fct.as_nanos() > 2_000 && fct.as_nanos() < 20_000, "FCT {fct}");
}

#[test]
fn simultaneous_flows_same_host_pair_are_independent() {
    // Many flows between one src/dst pair: per-flow sequence spaces and
    // FCTs must not interfere.
    let (topo, srcs, dst, _, _) = dumbbell(1, 40);
    let mut sim = Sim::new(
        topo,
        SimConfig::default(),
        Box::new(NullHostCcFactory),
        Box::new(NullSwitchCcFactory),
    );
    for i in 0..16 {
        sim.add_flow(FlowSpec {
            id: FlowId(i),
            src: srcs[0],
            dst,
            size: 10_000 * (i + 1),
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();
    assert_eq!(sim.trace.fcts.len(), 16);
    for i in 0..16 {
        assert_eq!(sim.trace.delivered_bytes(FlowId(i)), 10_000 * (i + 1));
    }
}
