//! RoCC protocol parameters (paper §3, Table 2, and §6 "System parameters").
//!
//! All congestion-point quantities are kept in *scaled units*: queue sizes
//! in multiples of ΔQ (600 B) and rates in multiples of ΔF (10 Mb/s). The
//! paper scales these down so the fair rate fits a small CNP field and Qold
//! fits narrow SRAM — we reproduce that datapath, including its
//! quantization, via the fixed-point arithmetic in [`crate::fixed`].

use rocc_sim::prelude::{BitRate, SimDuration};

/// Rate resolution ΔF (paper: 10 Mb/s).
pub const DELTA_F: BitRate = BitRate::from_mbps(10);
/// Queue-size resolution ΔQ (paper: 600 B).
pub const DELTA_Q: u64 = 600;

/// Congestion-point (switch) parameters for one egress port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpParams {
    /// Rate resolution ΔF.
    pub delta_f: BitRate,
    /// Queue resolution ΔQ in bytes.
    pub delta_q: u64,
    /// Fair-rate computation interval T (paper: 40 µs; DPDK testbed 100 µs).
    pub update_interval: SimDuration,
    /// Minimum fair rate, in multiples of ΔF (paper: 10 → 100 Mb/s).
    pub f_min: u32,
    /// Maximum fair rate, in multiples of ΔF (paper: 4000 @40G, 10000 @100G).
    pub f_max: u32,
    /// Reference queue length, in multiples of ΔQ.
    pub q_ref: u32,
    /// Queue-growth threshold for MD (F ← F/2), in multiples of ΔQ.
    pub q_mid: u32,
    /// Queue-size threshold for MD (F ← Fmin), in multiples of ΔQ.
    pub q_max: u32,
    /// Static PI proportional-ish gain α̃ (paper: 0.3 @40G, 0.45 @100G).
    pub alpha_static: f64,
    /// Static PI derivative-ish gain β̃ (paper: 1.5 @40G, 2.25 @100G).
    pub beta_static: f64,
    /// Enable the six-level quantized auto-tuner (§5.3). Disable to ablate.
    pub auto_tune: bool,
    /// Enable the multiplicative-decrease fast path (Alg. 1 lines 2–5).
    /// Disable to ablate.
    pub multiplicative_decrease: bool,
}

impl CpParams {
    /// Paper parameters for a 40 Gb/s egress link:
    /// Qref/Qmid/Qmax = 150/300/360 KB, Fmax = 4000·ΔF, α̃=0.3, β̃=1.5.
    pub fn for_40g() -> Self {
        CpParams {
            delta_f: DELTA_F,
            delta_q: DELTA_Q,
            update_interval: SimDuration::from_micros(40),
            f_min: 10,
            f_max: 4000,
            q_ref: (150_000 / DELTA_Q) as u32,
            q_mid: (300_000 / DELTA_Q) as u32,
            q_max: (360_000 / DELTA_Q) as u32,
            alpha_static: 0.3,
            beta_static: 1.5,
            auto_tune: true,
            multiplicative_decrease: true,
        }
    }

    /// Paper parameters for a 100 Gb/s egress link:
    /// Qref/Qmid/Qmax = 300/600/660 KB, Fmax = 10000·ΔF, α̃=0.45, β̃=2.25.
    pub fn for_100g() -> Self {
        CpParams {
            delta_f: DELTA_F,
            delta_q: DELTA_Q,
            update_interval: SimDuration::from_micros(40),
            f_min: 10,
            f_max: 10_000,
            q_ref: (300_000 / DELTA_Q) as u32,
            q_mid: (600_000 / DELTA_Q) as u32,
            q_max: (660_000 / DELTA_Q) as u32,
            alpha_static: 0.45,
            beta_static: 2.25,
            auto_tune: true,
            multiplicative_decrease: true,
        }
    }

    /// Paper parameters for the 10 Gb/s DPDK testbed (§6.2):
    /// Qref/Qmid/Qmax = 75/150/210 KB, T = 100 µs, Fmax = 1000·ΔF.
    /// α̃/β̃ scale with link rate like the published 40G/100G pairs.
    pub fn for_10g_testbed() -> Self {
        CpParams {
            delta_f: DELTA_F,
            delta_q: DELTA_Q,
            update_interval: SimDuration::from_micros(100),
            f_min: 10,
            f_max: 1000,
            q_ref: (75_000 / DELTA_Q) as u32,
            q_mid: (150_000 / DELTA_Q) as u32,
            q_max: (210_000 / DELTA_Q) as u32,
            alpha_static: 0.15,
            beta_static: 0.75,
            auto_tune: true,
            multiplicative_decrease: true,
        }
    }

    /// Select paper parameters by egress link rate (≥100G → 100G profile,
    /// ≥40G → 40G profile, otherwise the 10G testbed profile).
    pub fn for_link_rate(rate: BitRate) -> Self {
        if rate.as_bps() >= BitRate::from_gbps(100).as_bps() {
            Self::for_100g()
        } else if rate.as_bps() >= BitRate::from_gbps(40).as_bps() {
            Self::for_40g()
        } else {
            Self::for_10g_testbed()
        }
    }

    /// Fmax expressed as a [`BitRate`].
    pub fn f_max_rate(&self) -> BitRate {
        BitRate::from_bps(self.delta_f.as_bps() * self.f_max as u64)
    }

    /// Fmin expressed as a [`BitRate`].
    pub fn f_min_rate(&self) -> BitRate {
        BitRate::from_bps(self.delta_f.as_bps() * self.f_min as u64)
    }

    /// Validate the Qmax > Qmid > Qref ordering required for stability
    /// (§3.2) and basic sanity; panics with a descriptive message otherwise.
    pub fn validate(&self) {
        assert!(self.q_max > self.q_mid, "Qmax must exceed Qmid");
        assert!(self.q_mid > self.q_ref, "Qmid must exceed Qref");
        assert!(self.f_max > self.f_min, "Fmax must exceed Fmin");
        assert!(self.f_min > 0, "Fmin must be positive");
        assert!(
            self.alpha_static > 0.0 && self.beta_static > 0.0,
            "gains must be positive"
        );
    }
}

/// Reaction-point (host) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpParams {
    /// Rate resolution ΔF (must match the CP's).
    pub delta_f: BitRate,
    /// Fast-recovery timer: without an accepted CNP for this long, the rate
    /// limiter doubles its rate (Alg. 2, Timer_Expired). The paper leaves
    /// the period unspecified; 100 µs = 2.5·T gives headroom over the CNP
    /// cadence while recovering a 100 Mb/s → 40 Gb/s swing in ~0.9 ms.
    pub recovery_timer: SimDuration,
}

impl Default for RpParams {
    fn default() -> Self {
        RpParams {
            delta_f: DELTA_F,
            recovery_timer: SimDuration::from_micros(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_40g() {
        let p = CpParams::for_40g();
        p.validate();
        assert_eq!(p.q_ref, 250); // 150 KB / 600 B
        assert_eq!(p.q_mid, 500);
        assert_eq!(p.q_max, 600);
        assert_eq!(p.f_max_rate(), BitRate::from_gbps(40));
        assert_eq!(p.f_min_rate(), BitRate::from_mbps(100));
    }

    #[test]
    fn paper_values_100g() {
        let p = CpParams::for_100g();
        p.validate();
        assert_eq!(p.q_ref, 500);
        assert_eq!(p.q_mid, 1000);
        assert_eq!(p.q_max, 1100);
        assert_eq!(p.f_max_rate(), BitRate::from_gbps(100));
    }

    #[test]
    fn link_rate_selection() {
        assert_eq!(
            CpParams::for_link_rate(BitRate::from_gbps(100)),
            CpParams::for_100g()
        );
        assert_eq!(
            CpParams::for_link_rate(BitRate::from_gbps(40)),
            CpParams::for_40g()
        );
        assert_eq!(
            CpParams::for_link_rate(BitRate::from_gbps(10)),
            CpParams::for_10g_testbed()
        );
    }

    #[test]
    #[should_panic(expected = "Qmid must exceed Qref")]
    fn validate_rejects_bad_ordering() {
        let mut p = CpParams::for_40g();
        p.q_mid = p.q_ref;
        p.validate();
    }
}
