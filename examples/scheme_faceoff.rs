//! Scheme face-off: DCQCN vs HPCC vs RoCC on a realistic rack workload.
//!
//! Runs the paper's FB_Hadoop traffic (latency-sensitive small flows) at
//! 70% load through a reduced two-level fat-tree, one congestion-control
//! scheme at a time, and prints the flow-completion-time comparison —
//! the essence of the paper's §6.3 evaluation.
//!
//! ```text
//! cargo run --release --example scheme_faceoff
//! ```

use rocc::experiments::fct::{run_fat_tree, BufferRegime, FatTreeConfig, Workload};
use rocc::experiments::Scheme;
use rocc::sim::prelude::SimDuration;
use rocc::stats::{percentile, summarize};

fn main() {
    let cfg = FatTreeConfig {
        hosts_per_edge: 5,
        trunks: 1,
        window: SimDuration::from_millis(5),
        max_drain: SimDuration::from_millis(600),
        reps: 1,
    };
    println!(
        "FB_Hadoop at 70% load through a 3-core/3-edge fat-tree ({} senders -> {} receivers)\n",
        2 * cfg.hosts_per_edge,
        cfg.hosts_per_edge
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "scheme", "flows", "mean FCT", "p90 FCT", "p99 FCT", "PFC", "core queue"
    );
    for scheme in Scheme::large_scale_set() {
        let out = run_fat_tree(scheme, Workload::FbHadoop, 0.7, &cfg, BufferRegime::Pfc, 42);
        let fcts: Vec<f64> = out.fcts.iter().map(|&(_, f)| f * 1e3).collect();
        let s = summarize(&fcts).expect("no flows completed");
        println!(
            "{:>8} {:>8} {:>8.3}ms {:>8.3}ms {:>8.3}ms {:>8} {:>8.0}KB",
            scheme.name(),
            fcts.len(),
            s.mean,
            percentile(&fcts, 0.90).unwrap(),
            percentile(&fcts, 0.99).unwrap(),
            out.pfc_core + out.pfc_ingress + out.pfc_egress,
            out.q_core / 1e3,
        );
    }
    println!("\nExpected shape (paper Figs. 14-17): RoCC's tail (p99) beats DCQCN");
    println!("by holding every queue at its reference depth; DCQCN's deep queues");
    println!("inflate small-flow latency and trigger PFC; HPCC keeps queues");
    println!("near-empty but gives up throughput headroom on long flows.");
}
