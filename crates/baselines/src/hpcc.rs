//! HPCC (Li et al., SIGCOMM '19) — in-band-telemetry window control, the
//! strongest source-driven baseline in the RoCC comparison.
//!
//! * **Switch**: stamps an INT record (queue length, cumulative tx bytes,
//!   timestamp, line rate) on every departing data packet.
//! * **Receiver**: echoes the INT stack on the ACK.
//! * **Sender**: for every hop computes utilization
//!   `U_i = qlen_i / (B_i · T) + txRate_i / B_i` from consecutive INT
//!   snapshots, takes `U = max_i U_i`, and steers the window:
//!   multiplicative adjustment `W = Wc / (U/η) + W_ai` when `U ≥ η` (or the
//!   additive-increase stage budget is spent), otherwise additive
//!   `W = Wc + W_ai`. The reference window `Wc` is updated once per RTT.
//!   Pacing rate follows `W / T`.
//!
//! η < 1 deliberately trades a slice of bandwidth for near-empty queues —
//! the headroom the RoCC paper points to when comparing throughput and tail
//! FCT for long flows.

use rocc_sim::cc::{
    AckEvent, HostCc, HostCcCtx, PacketMeta, RateDecision, SwitchCc, SwitchCcCtx, SwitchCcFactory,
};
use rocc_sim::prelude::{BitRate, CpId, FlowId, IntHop, SimDuration};

/// HPCC sender parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpccParams {
    /// Target utilization η (paper: 0.95).
    pub eta: f64,
    /// Max additive-increase stages per multiplicative sync (paper: 5).
    pub max_stage: u32,
    /// Base (unloaded) network RTT — sets the BDP window and pacing.
    pub base_rtt: SimDuration,
    /// Additive-increase step in bytes (per update); the HPCC paper picks
    /// `W_AI = W_init·(1−η)/N` so N flows can close the (1−η) gap — i.e.
    /// proportional to the flow's own BDP. `0` means "derive from W_init"
    /// (the faithful behaviour, which also reproduces HPCC's bias toward
    /// fast-NIC hosts on asymmetric topologies, paper Fig. 12b).
    pub w_ai: u64,
}

impl Default for HpccParams {
    fn default() -> Self {
        HpccParams {
            eta: 0.95,
            max_stage: 5,
            base_rtt: SimDuration::from_micros(12),
            w_ai: 0,
        }
    }
}

/// HPCC's switch side: INT stamping at dequeue.
pub struct HpccSwitchCc;

impl SwitchCc for HpccSwitchCc {
    fn on_dequeue(&mut self, ctx: &mut SwitchCcCtx<'_>, _pkt: PacketMeta) -> Option<IntHop> {
        Some(IntHop {
            qlen_bytes: ctx.qlen_bytes,
            tx_bytes: ctx.tx_bytes,
            ts_ns: ctx.now.as_nanos(),
            rate: ctx.link_rate,
        })
    }
}

/// Factory for [`HpccSwitchCc`].
#[derive(Debug, Default, Clone, Copy)]
pub struct HpccSwitchCcFactory;

impl SwitchCcFactory for HpccSwitchCcFactory {
    fn make(&self, _cp: CpId, _link_rate: BitRate) -> Box<dyn SwitchCc> {
        Box::new(HpccSwitchCc)
    }
}

/// Per-hop INT snapshot retained between ACKs.
#[derive(Debug, Clone, Copy, Default)]
struct HopRef {
    tx_bytes: u64,
    ts_ns: u64,
    valid: bool,
}

/// HPCC's per-flow sender state.
pub struct HpccHostCc {
    p: HpccParams,
    r_max: BitRate,
    /// Current window (bytes).
    w: f64,
    /// Reference window Wc (bytes), synced once per RTT.
    wc: f64,
    inc_stage: u32,
    /// Sequence number that ends the current RTT round.
    last_update_seq: u64,
    hop_ref: [HopRef; rocc_sim::packet::MAX_INT_HOPS],
}

impl HpccHostCc {
    /// Start at the BDP window (W_init = B · T_base).
    pub fn new(mut p: HpccParams, r_max: BitRate) -> Self {
        let w_init = r_max.bytes_over(p.base_rtt) as f64;
        if p.w_ai == 0 {
            // W_AI = W_init·(1−η)/N with N = 16 expected concurrent flows.
            p.w_ai = ((w_init * (1.0 - p.eta) / 16.0) as u64).max(100);
        }
        HpccHostCc {
            p,
            r_max,
            w: w_init,
            wc: w_init,
            inc_stage: 0,
            last_update_seq: 0,
            hop_ref: Default::default(),
        }
    }

    /// Current window in bytes (tests).
    pub fn window(&self) -> u64 {
        self.w.max(0.0) as u64
    }

    /// Max per-hop utilization from the echoed INT stack versus the stored
    /// reference snapshots. Returns `None` until references exist.
    fn max_utilization(&mut self, hops: &[IntHop]) -> Option<f64> {
        let mut u_max: Option<f64> = None;
        for (i, h) in hops.iter().enumerate() {
            let r = &mut self.hop_ref[i];
            if r.valid && h.ts_ns > r.ts_ns {
                let dt = (h.ts_ns - r.ts_ns) as f64 / 1e9;
                let tx_rate = (h.tx_bytes.wrapping_sub(r.tx_bytes)) as f64 * 8.0 / dt;
                let b = h.rate.as_bps() as f64;
                let u = h.qlen_bytes as f64 * 8.0 / (b * self.p.base_rtt.as_secs_f64())
                    + tx_rate / b;
                u_max = Some(u_max.map_or(u, |m: f64| m.max(u)));
            }
            *r = HopRef {
                tx_bytes: h.tx_bytes,
                ts_ns: h.ts_ns,
                valid: true,
            };
        }
        u_max
    }
}

impl HostCc for HpccHostCc {
    fn decision(&self) -> RateDecision {
        let w = self.w.max(1500.0); // never below one MTU
        let rate = BitRate::from_bps((w * 8.0 / self.p.base_rtt.as_secs_f64()) as u64);
        RateDecision {
            rate: rate.min(self.r_max),
            window_bytes: Some(w as u64),
        }
    }

    fn on_ack(&mut self, _ctx: &mut HostCcCtx, ack: AckEvent) {
        let hops = ack.int;
        let Some(u) = self.max_utilization(hops.hops()) else {
            return;
        };
        let new_round = ack.cum_seq > self.last_update_seq;
        if u >= self.p.eta || self.inc_stage >= self.p.max_stage {
            // Multiplicative adjustment toward η utilization.
            self.w = self.wc / (u / self.p.eta) + self.p.w_ai as f64;
            if new_round {
                self.wc = self.w;
                self.inc_stage = 0;
                self.last_update_seq = ack.cum_seq + self.window();
            }
        } else {
            self.w = self.wc + self.p.w_ai as f64;
            if new_round {
                self.wc = self.w;
                self.inc_stage += 1;
                self.last_update_seq = ack.cum_seq + self.window();
            }
        }
        // Window stays within [1 MTU, 2 × BDP-at-line-rate].
        let w_cap = self.r_max.bytes_over(self.p.base_rtt) as f64 * 2.0;
        self.w = self.w.clamp(1500.0, w_cap);
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.w.to_bits());
        out.push(self.wc.to_bits());
        out.push(self.inc_stage as u64);
        out.push(self.last_update_seq);
        for r in &self.hop_ref {
            out.push(r.tx_bytes);
            out.push(r.ts_ns);
            out.push(r.valid as u64);
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        if state.len() != 4 + self.hop_ref.len() * 3 {
            return; // digest-verified upstream; short input is a no-op
        }
        self.w = f64::from_bits(state[0]);
        self.wc = f64::from_bits(state[1]);
        self.inc_stage = state[2] as u32;
        self.last_update_seq = state[3];
        for (r, c) in self.hop_ref.iter_mut().zip(state[4..].chunks_exact(3)) {
            *r = HopRef {
                tx_bytes: c[0],
                ts_ns: c[1],
                valid: c[2] != 0,
            };
        }
    }
}

/// Factory for [`HpccHostCc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HpccHostCcFactory {
    /// Parameter override.
    pub params: Option<HpccParams>,
}

impl rocc_sim::cc::HostCcFactory for HpccHostCcFactory {
    fn make(&self, _flow: FlowId, link_rate: BitRate) -> Box<dyn HostCc> {
        Box::new(HpccHostCc::new(self.params.unwrap_or_default(), link_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::packet::IntStack;
    use rocc_sim::prelude::SimTime;

    fn ctx() -> HostCcCtx {
        HostCcCtx {
            now: SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        }
    }

    fn hop(qlen: u64, tx: u64, ts_us: u64) -> IntHop {
        IntHop {
            qlen_bytes: qlen,
            tx_bytes: tx,
            ts_ns: ts_us * 1000,
            rate: BitRate::from_gbps(40),
        }
    }

    fn ack_with(hops: &[IntHop], cum: u64) -> AckEvent {
        let mut int = IntStack::new();
        for h in hops {
            int.push(*h);
        }
        AckEvent {
            newly_acked: 1000,
            cum_seq: cum,
            rtt: SimDuration::from_micros(12),
            ecn_echo: false,
            int,
        }
    }

    #[test]
    fn starts_at_bdp() {
        let cc = HpccHostCc::new(HpccParams::default(), BitRate::from_gbps(40));
        // 40 Gb/s × 12 µs = 60 kB.
        assert_eq!(cc.window(), 60_000);
        assert!(cc.decision().window_bytes.is_some());
    }

    #[test]
    fn overloaded_link_shrinks_window() {
        let mut cc = HpccHostCc::new(HpccParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        // First ACK establishes references.
        cc.on_ack(&mut c, ack_with(&[hop(0, 0, 0)], 1000));
        let w0 = cc.window();
        // Deep queue + line-rate tx → U well above η.
        cc.on_ack(&mut c, ack_with(&[hop(300_000, 50_000, 10)], 2000));
        assert!(cc.window() < w0, "window {w0} -> {}", cc.window());
    }

    #[test]
    fn idle_link_grows_window() {
        let mut cc = HpccHostCc::new(HpccParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_ack(&mut c, ack_with(&[hop(0, 0, 0)], 1000));
        let w0 = cc.window();
        // Empty queue, low tx rate → U ≈ 0.1.
        cc.on_ack(&mut c, ack_with(&[hop(0, 5_000, 10)], 2000));
        assert!(cc.window() >= w0, "window {w0} -> {}", cc.window());
    }

    #[test]
    fn utilization_takes_max_over_hops() {
        let mut cc = HpccHostCc::new(HpccParams::default(), BitRate::from_gbps(40));
        // Prime references on two hops.
        cc.max_utilization(&[hop(0, 0, 0), hop(0, 0, 0)]);
        // Hop 0 idle; hop 1 saturated.
        let u = cc
            .max_utilization(&[hop(0, 1_000, 10), hop(200_000, 50_000, 10)])
            .unwrap();
        assert!(u > 1.0, "saturated hop must dominate: U = {u}");
    }

    #[test]
    fn window_never_collapses_below_mtu() {
        let mut cc = HpccHostCc::new(HpccParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_ack(&mut c, ack_with(&[hop(0, 0, 0)], 1000));
        for i in 1..50 {
            cc.on_ack(
                &mut c,
                ack_with(&[hop(10_000_000, i * 60_000, i * 10)], (i + 1) * 1000),
            );
        }
        assert!(cc.window() >= 1500);
        assert!(cc.decision().rate.as_bps() > 0);
    }

    #[test]
    fn additive_stages_then_multiplicative_sync() {
        let p = HpccParams::default();
        let mut cc = HpccHostCc::new(p, BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_ack(&mut c, ack_with(&[hop(0, 0, 0)], 1000));
        // Low utilization for many RTT rounds: additive growth, stage
        // counter capped by max_stage.
        let mut cum = 1000;
        for i in 1..20u64 {
            cum += 100_000; // advance a full window each time → new round
            cc.on_ack(&mut c, ack_with(&[hop(0, i * 2_000, i * 12)], cum));
        }
        assert!(cc.inc_stage <= p.max_stage);
    }
}
