//! Property-based tests for the baseline schemes: under arbitrary feedback
//! sequences, every reaction point keeps its rate/window within bounds and
//! never wedges at zero.

use proptest::prelude::*;
use rocc_baselines::dcqcn::{DcqcnHostCc, DcqcnParams};
use rocc_baselines::hpcc::{HpccHostCc, HpccParams};
use rocc_baselines::qcn::{QcnHostCc, QcnRpParams};
use rocc_baselines::timely::{TimelyHostCc, TimelyParams};
use rocc_sim::cc::{AckEvent, FeedbackEvent, HostCc, HostCcCtx};
use rocc_sim::packet::{IntHop, IntStack};
use rocc_sim::prelude::*;

fn ctx_at(us: u64) -> HostCcCtx {
    HostCcCtx {
        now: SimTime::from_micros(us),
        link_rate: BitRate::from_gbps(40),
        set_timers: Vec::new(),
        cancel_timers: Vec::new(),
        events: Vec::new(),
        event_mask: rocc_sim::telemetry::EventMask::NONE,
    }
}

fn ack(newly: u64, cum: u64, rtt_us: u64, ecn: bool, int: IntStack) -> AckEvent {
    AckEvent {
        newly_acked: newly,
        cum_seq: cum,
        rtt: SimDuration::from_micros(rtt_us),
        ecn_echo: ecn,
        int,
    }
}

proptest! {
    /// DCQCN: any interleaving of marked ACKs and timer fires keeps the
    /// rate in [r_min, line rate].
    #[test]
    fn dcqcn_rate_bounded(
        events in proptest::collection::vec((0u8..3, 1u64..200), 1..120),
    ) {
        let p = DcqcnParams::default();
        let line = BitRate::from_gbps(40);
        let mut cc = DcqcnHostCc::new(p, line);
        let mut now = 0u64;
        let mut cum = 0u64;
        for (kind, dt) in events {
            now += dt;
            let mut c = ctx_at(now);
            match kind {
                0 => {
                    cum += 1000;
                    cc.on_ack(&mut c, ack(1000, cum, 15, true, IntStack::new()));
                }
                1 => cc.on_timer(&mut c, 0), // alpha decay
                _ => cc.on_timer(&mut c, 1), // increase stage
            }
            let r = cc.decision().rate;
            prop_assert!(r >= p.r_min && r <= line, "rate {r}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cc.alpha()), "alpha {}", cc.alpha());
        }
    }

    /// QCN: arbitrary Fb values keep the rate within bounds.
    #[test]
    fn qcn_rate_bounded(fbs in proptest::collection::vec(0u8..64, 1..100)) {
        let p = QcnRpParams::default();
        let line = BitRate::from_gbps(40);
        let mut cc = QcnHostCc::new(p, line);
        for (i, fb) in fbs.into_iter().enumerate() {
            let mut c = ctx_at(i as u64 * 10);
            cc.on_feedback(&mut c, FeedbackEvent::QcnFb {
                fb,
                cp: CpId { node: NodeId(0), port: PortId(0) },
            });
            if i % 3 == 0 {
                let mut c = ctx_at(i as u64 * 10 + 5);
                cc.on_timer(&mut c, 0);
            }
            let r = cc.decision().rate;
            prop_assert!(r >= p.r_min && r <= line, "rate {r}");
        }
    }

    /// TIMELY: arbitrary RTT trajectories keep the rate within bounds.
    #[test]
    fn timely_rate_bounded(rtts in proptest::collection::vec(1u64..2000, 1..150)) {
        let p = TimelyParams::default();
        let line = BitRate::from_gbps(40);
        let mut cc = TimelyHostCc::new(p, line);
        let mut cum = 0;
        for (i, rtt) in rtts.into_iter().enumerate() {
            cum += p.seg_bytes;
            let mut c = ctx_at(i as u64 * 20);
            cc.on_ack(&mut c, ack(p.seg_bytes, cum, rtt, false, IntStack::new()));
            let r = cc.decision().rate;
            prop_assert!(r >= p.r_min && r <= line, "rate {r} after rtt {rtt}us");
        }
    }

    /// HPCC: arbitrary INT trajectories keep the window in
    /// [1 MTU, 2×BDP] and the pacing rate positive.
    #[test]
    fn hpcc_window_bounded(
        states in proptest::collection::vec((0u64..2_000_000, 1u64..100_000), 2..80),
    ) {
        let p = HpccParams::default();
        let line = BitRate::from_gbps(40);
        let mut cc = HpccHostCc::new(p, line);
        let bdp2 = line.bytes_over(p.base_rtt) * 2;
        let mut cum = 0u64;
        let mut tx = 0u64;
        for (i, (qlen, dtx)) in states.into_iter().enumerate() {
            tx += dtx;
            cum += 1000;
            let mut int = IntStack::new();
            int.push(IntHop {
                qlen_bytes: qlen,
                tx_bytes: tx,
                ts_ns: (i as u64 + 1) * 10_000,
                rate: line,
            });
            let mut c = ctx_at(i as u64 * 10);
            cc.on_ack(&mut c, ack(1000, cum, 12, false, int));
            let w = cc.window();
            prop_assert!(w >= 1500 && w <= bdp2 + 1, "window {w}");
            prop_assert!(cc.decision().rate.as_bps() > 0);
        }
    }
}
