//! Table 1: the qualitative comparison of congestion-control solutions.

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Solution name.
    pub solution: &'static str,
    /// Switch action.
    pub switch_action: &'static str,
    /// Source action.
    pub source_action: &'static str,
    /// Destination action.
    pub destination_action: &'static str,
}

/// The paper's Table 1, verbatim.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            solution: "DCTCP",
            switch_action: "Mark ECN",
            source_action: "Adjust congestion window based on ECN",
            destination_action: "Echo ECN",
        },
        Table1Row {
            solution: "QCN",
            switch_action: "Compute and send Fb to source",
            source_action: "Compute rate based on Fb",
            destination_action: "None",
        },
        Table1Row {
            solution: "DCQCN",
            switch_action: "Mark ECN",
            source_action: "Compute rate based on CNP",
            destination_action: "Send CNP to source",
        },
        Table1Row {
            solution: "TIMELY",
            switch_action: "None",
            source_action: "Send RTT probes and compute rate based on RTT",
            destination_action: "Echo RTT probes",
        },
        Table1Row {
            solution: "HPCC",
            switch_action: "Inject INT",
            source_action: "Adjust sending window based on INT",
            destination_action: "Echo INT",
        },
        Table1Row {
            solution: "RoCC",
            switch_action: "Compute and send rate to source",
            source_action: "Use minimum rate received from switch(es)",
            destination_action: "None",
        },
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn six_solutions_listed() {
        let t = super::table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t.last().unwrap().solution, "RoCC");
        assert_eq!(t.last().unwrap().destination_action, "None");
    }
}
