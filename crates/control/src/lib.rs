//! # rocc-control — stability analysis of the RoCC PI loop
//!
//! Reproduces the paper's §5 control-theoretic analysis: the open-loop
//! transfer function `G(s) = K(1 + s/z1)/s² · e^(−sT)` of the queue + PI +
//! delay feedback loop ([`model`]), and Bode/phase-margin machinery
//! ([`margin`]) behind Fig. 5 (margin over the (α, β) plane), Fig. 6
//! (gain/phase traces for two N), and Fig. 7 (margin and loop bandwidth vs
//! N for the six halving α:β pairs that motivate the auto-tuner).

#![warn(missing_docs)]

pub mod complex;
pub mod margin;
pub mod model;

pub use complex::Complex;
pub use margin::{analyze, bode_sweep, fig7_gain_pairs, phase_margin_surface, BodePoint, Margin, SurfacePoint};
pub use model::LoopModel;
