//! Network topology: nodes, ports, unidirectional links, and static routing
//! with equal-cost multipath (ECMP).
//!
//! Topologies are built once, up front, with [`TopologyBuilder`]; the
//! simulator then treats them as immutable. Routing tables are computed by
//! breadth-first search from every destination host; where several ports lie
//! on equally short paths, the forwarding decision hashes the flow id so a
//! flow sticks to one path (per-flow ECMP, as the paper's fat-tree uses).

use crate::packet::FlowId;
use crate::time::SimDuration;
use crate::units::BitRate;
use std::collections::VecDeque;

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a port local to one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// Index of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node is, and (for switches) where it sits in the fabric.
/// Roles let experiments classify congestion points the way the paper does
/// (Fig. 17 reports core / ingress-edge / egress-edge separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// An end host with a single NIC port.
    Host,
    /// A top-of-rack / edge switch.
    EdgeSwitch,
    /// A core / spine switch.
    CoreSwitch,
    /// A switch with no particular tier (single-switch topologies).
    Switch,
}

impl NodeRole {
    /// True for any switch role.
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeRole::Host)
    }
}

/// One unidirectional link.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Transmitting node and its egress port.
    pub from: (NodeId, PortId),
    /// Receiving node and its ingress port.
    pub to: (NodeId, PortId),
    /// Line rate.
    pub rate: BitRate,
    /// Propagation delay.
    pub delay: SimDuration,
}

/// Static description of one node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Human-readable name (used in traces and reports).
    pub name: String,
    /// Role in the fabric.
    pub role: NodeRole,
    /// Outgoing link attached to each local port.
    pub out_links: Vec<LinkId>,
    /// Incoming link attached to each local port.
    pub in_links: Vec<LinkId>,
}

/// An immutable network topology with precomputed ECMP routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    links: Vec<Link>,
    hosts: Vec<NodeId>,
    /// `routes[node][host_rank]` = candidate egress ports toward that host.
    routes: Vec<Vec<Vec<PortId>>>,
    /// Dense rank of each host node (usize::MAX for switches).
    host_rank: Vec<usize>,
}

impl Topology {
    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.0]
    }

    /// All unidirectional links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link metadata.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// All host nodes, in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Outgoing link on `port` of `node`.
    pub fn out_link(&self, node: NodeId, port: PortId) -> LinkId {
        self.nodes[node.0].out_links[port.0]
    }

    /// The reverse direction of `link` (every connection is full duplex, so
    /// the reverse always exists).
    pub fn reverse_link(&self, link: LinkId) -> LinkId {
        let l = self.links[link.0];
        let (to_node, to_port) = l.to;
        self.nodes[to_node.0].out_links[to_port.0]
    }

    /// Number of ports on `node`.
    pub fn port_count(&self, node: NodeId) -> usize {
        self.nodes[node.0].out_links.len()
    }

    /// Select the egress port on `node` toward destination host `dst` for
    /// `flow`, hashing the flow id across equal-cost candidates.
    ///
    /// Returns `None` when `dst` is unreachable from `node`.
    pub fn route(&self, node: NodeId, dst: NodeId, flow: FlowId) -> Option<PortId> {
        let rank = self.host_rank[dst.0];
        if rank == usize::MAX {
            return None;
        }
        let cands = &self.routes[node.0][rank];
        if cands.is_empty() {
            return None;
        }
        let h = ecmp_hash(flow.0, node.0 as u64);
        Some(cands[(h % cands.len() as u64) as usize])
    }

    /// All equal-cost egress ports on `node` toward `dst` (for tests and
    /// diagnostics).
    pub fn route_candidates(&self, node: NodeId, dst: NodeId) -> &[PortId] {
        let rank = self.host_rank[dst.0];
        if rank == usize::MAX {
            return &[];
        }
        &self.routes[node.0][rank]
    }

    /// The node on the far end of `port` of `node`.
    pub fn neighbor(&self, node: NodeId, port: PortId) -> NodeId {
        let l = self.out_link(node, port);
        self.links[l.0].to.0
    }
}

/// 64-bit FNV-1a over the flow id and node id; deterministic so runs are
/// reproducible, yet spreads flows across equal-cost paths.
fn ecmp_hash(flow: u64, node: u64) -> u64 {
    let mut h = rocc_stats::digest::Fnv64::new();
    h.write_u64(flow);
    h.write_u64(node);
    h.finish()
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeInfo>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an end host. Hosts get exactly one port when first connected.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeRole::Host)
    }

    /// Add a switch with the given fabric role.
    pub fn add_switch(&mut self, name: impl Into<String>, role: NodeRole) -> NodeId {
        assert!(role.is_switch(), "switch role required");
        self.add_node(name.into(), role)
    }

    fn add_node(&mut self, name: String, role: NodeRole) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            name,
            role,
            out_links: Vec::new(),
            in_links: Vec::new(),
        });
        id
    }

    /// Connect `a` and `b` with a full-duplex link (two unidirectional links
    /// of the same rate and delay). Returns the new port ids `(on_a, on_b)`.
    ///
    /// Panics if a host would end up with more than one port.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate: BitRate,
        delay: SimDuration,
    ) -> (PortId, PortId) {
        assert_ne!(a, b, "self-links are not allowed");
        let pa = PortId(self.nodes[a.0].out_links.len());
        let pb = PortId(self.nodes[b.0].out_links.len());
        for (n, p) in [(a, pa), (b, pb)] {
            if self.nodes[n.0].role == NodeRole::Host {
                assert_eq!(p.0, 0, "host {} must have exactly one port", self.nodes[n.0].name);
            }
        }
        let ab = LinkId(self.links.len());
        self.links.push(Link {
            from: (a, pa),
            to: (b, pb),
            rate,
            delay,
        });
        let ba = LinkId(self.links.len());
        self.links.push(Link {
            from: (b, pb),
            to: (a, pa),
            rate,
            delay,
        });
        self.nodes[a.0].out_links.push(ab);
        self.nodes[a.0].in_links.push(ba);
        self.nodes[b.0].out_links.push(ba);
        self.nodes[b.0].in_links.push(ab);
        (pa, pb)
    }

    /// Finalize: compute ECMP routing tables from every node to every host.
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        let hosts: Vec<NodeId> = (0..n)
            .filter(|&i| self.nodes[i].role == NodeRole::Host)
            .map(NodeId)
            .collect();
        let mut host_rank = vec![usize::MAX; n];
        for (rank, h) in hosts.iter().enumerate() {
            host_rank[h.0] = rank;
        }

        // For each destination host, BFS over the reversed graph to get
        // distances, then each node's candidate ports are those whose
        // neighbor is one hop closer to the destination.
        let mut routes = vec![vec![Vec::new(); hosts.len()]; n];
        for (rank, &dst) in hosts.iter().enumerate() {
            let mut dist = vec![usize::MAX; n];
            dist[dst.0] = 0;
            let mut q = VecDeque::new();
            q.push_back(dst.0);
            while let Some(u) = q.pop_front() {
                // Traverse incoming links: nodes that can reach `u` directly.
                for &lid in &self.nodes[u].in_links {
                    let v = self.links[lid.0].from.0 .0;
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            for (u, node) in self.nodes.iter().enumerate() {
                if u == dst.0 || dist[u] == usize::MAX {
                    continue;
                }
                for (p, &lid) in node.out_links.iter().enumerate() {
                    let v = self.links[lid.0].to.0 .0;
                    if dist[v] + 1 == dist[u] {
                        routes[u][rank].push(PortId(p));
                    }
                }
            }
        }

        Topology {
            nodes: self.nodes,
            links: self.links,
            hosts,
            routes,
            host_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate() -> BitRate {
        BitRate::from_gbps(40)
    }

    fn delay() -> SimDuration {
        SimDuration::from_micros(1)
    }

    /// host0 - sw - host1
    fn line() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw", NodeRole::Switch);
        b.connect(h0, sw, rate(), delay());
        b.connect(h1, sw, rate(), delay());
        (b.build(), h0, h1, sw)
    }

    #[test]
    fn line_routing() {
        let (t, h0, h1, sw) = line();
        let f = FlowId(7);
        // From h0 toward h1: out its only port.
        assert_eq!(t.route(h0, h1, f), Some(PortId(0)));
        // At the switch, toward h1: the port facing h1.
        let p = t.route(sw, h1, f).unwrap();
        assert_eq!(t.neighbor(sw, p), h1);
        // Toward h0 likewise.
        let p = t.route(sw, h0, f).unwrap();
        assert_eq!(t.neighbor(sw, p), h0);
    }

    #[test]
    fn reverse_link_pairs_up() {
        let (t, h0, _, sw) = line();
        let l = t.out_link(h0, PortId(0));
        let r = t.reverse_link(l);
        assert_eq!(t.link(r).from.0, sw);
        assert_eq!(t.link(r).to.0, h0);
        assert_eq!(t.reverse_link(r), l);
    }

    #[test]
    fn ecmp_spreads_flows() {
        // h0 - s0 = two parallel = s1 - h1: two equal-cost paths.
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1");
        let s0 = b.add_switch("s0", NodeRole::EdgeSwitch);
        let s1 = b.add_switch("s1", NodeRole::EdgeSwitch);
        b.connect(h0, s0, rate(), delay());
        b.connect(s0, s1, rate(), delay());
        b.connect(s0, s1, rate(), delay());
        b.connect(s1, h1, rate(), delay());
        let t = b.build();
        let cands = t.route_candidates(s0, h1);
        assert_eq!(cands.len(), 2);
        // Many flows should not all pick the same port.
        let picks: std::collections::HashSet<_> =
            (0..64).map(|i| t.route(s0, h1, FlowId(i)).unwrap()).collect();
        assert_eq!(picks.len(), 2, "ECMP should use both paths");
        // A single flow must be sticky.
        for _ in 0..4 {
            assert_eq!(t.route(s0, h1, FlowId(3)), t.route(s0, h1, FlowId(3)));
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host("h0");
        let h1 = b.add_host("h1"); // never connected
        let s = b.add_switch("s", NodeRole::Switch);
        b.connect(h0, s, rate(), delay());
        let t = b.build();
        assert_eq!(t.route(h0, h1, FlowId(0)), None);
    }

    #[test]
    #[should_panic(expected = "exactly one port")]
    fn host_single_port_enforced() {
        let mut b = TopologyBuilder::new();
        let h = b.add_host("h");
        let s0 = b.add_switch("s0", NodeRole::Switch);
        let s1 = b.add_switch("s1", NodeRole::Switch);
        b.connect(h, s0, rate(), delay());
        b.connect(h, s1, rate(), delay());
    }

    #[test]
    fn roles_and_hosts_list() {
        let (t, h0, h1, sw) = line();
        assert_eq!(t.hosts(), &[h0, h1]);
        assert!(t.node(sw).role.is_switch());
        assert!(!t.node(h0).role.is_switch());
    }
}
