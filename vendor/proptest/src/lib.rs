//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace uses:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` arguments
//! - range strategies over the integer types and `f64`, 2-tuples of
//!   strategies, and [`collection::vec`]
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//!
//! Unlike upstream there is no shrinking and no persisted regression corpus:
//! a failing case panics immediately with the generated inputs available via
//! the assertion message. Case generation is deterministic — the RNG seed is
//! derived from the test's name — so failures reproduce across runs.

/// Strategy abstraction: anything that can generate values for a test case.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name, so every
    /// run of a given test sees the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a over the name).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, span)` for `span >= 1` (Lemire widening multiply).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span >= 1);
            let mut m = self.next_u64() as u128 * span as u128;
            if (m as u64) < span {
                let thresh = span.wrapping_neg() % span;
                while (m as u64) < thresh {
                    m = self.next_u64() as u128 * span as u128;
                }
            }
            (m >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use test_runner::ProptestConfig;

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }` item
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: config resolved, expand each property fn.
    (@run ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident (
            $($arg:pat in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    // Leading inner attribute selects the config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    // No config: default case count.
    ($($rest:tt)*) => {
        $crate::proptest! {
            @run (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Asserts a condition inside a property body (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the precondition does not hold.
///
/// Expands to `continue` on the case loop, so it is only valid directly
/// inside a `proptest!` body (which is where upstream allows it too).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Smoke coverage for the stub itself.
#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = crate::collection::vec(0u64..10, 3..7);
        let mut rng = crate::test_runner::TestRng::deterministic("vec_strategy");
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_generates_in_range(x in 5u32..9, (a, b) in (0u8..3, 1u64..4), f in 0.0f64..1.0) {
            prop_assert!((5..9).contains(&x));
            prop_assert!(a < 3 && (1..4).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assume!(x != 6);
            prop_assert_ne!(x, 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(mut v in crate::collection::vec(0i64..100, 1..5)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
