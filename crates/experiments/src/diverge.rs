//! `repro diverge` — the divergence observatory's CLI driver.
//!
//! Runs two supposedly-equivalent configurations of the same scenario in
//! lockstep — different scheduler backends, or one run deliberately
//! perturbed with an RP bit-flip fault — and bisects to the exact first
//! event index after which any per-subsystem state digest differs,
//! emitting a `rocc-divergence-report/v1` artifact (see
//! [`rocc_sim::digest`]). Also records and diffs strided
//! `rocc-digest-ledger/v1` files for offline cross-machine comparison.
//!
//! A spec names a backend plus an optional injected fault:
//!
//! ```text
//! wheel             timing-wheel scheduler, clean
//! heap              binary-heap scheduler, clean
//! wheel+flip@40000  wheel, with one RP rate bit flipped after event 40000
//! ```
//!
//! The flip is [`Sim::inject_rp_perturbation`] — bit 30 of the first
//! host's RoCC RP rate word (~1 Gb/s), a lasting pacing shift the
//! bisector must trace back to exactly the event it was injected at.

use crate::observatory;
use crate::Scale;
use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::digest::{bisect_divergence, BisectOptions, BisectOutcome};
use rocc_sim::prelude::*;

/// Scenario names accepted by [`scenario_sim`]. `chaos` is the faulted
/// 6-sender incast the golden/scheduler suites pin (loss on data and
/// CNPs plus a link flap); `incast` is the observatory's clean incast.
pub const SCENARIOS: [&str; 2] = ["chaos", "incast"];

/// Default phase-1 scan stride (events between digest comparisons).
pub const DEFAULT_SCAN_STRIDE: u64 = 2048;

/// Default cap on events compared before two runs are declared
/// identical. Scenario schedules can keep ticking past flow completion,
/// so the lockstep comparison needs a horizon; this covers every quick
/// chaos/incast run with headroom.
pub const DEFAULT_MAX_EVENTS: u64 = 200_000;

/// Default stride for `repro diverge record` ledgers.
pub const DEFAULT_LEDGER_STRIDE: u64 = 2048;

/// One side of a divergence comparison: a scheduler backend, optionally
/// with an injected RP bit-flip at a fixed event index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergeSpec {
    /// Scheduler backend to force.
    pub backend: Backend,
    /// Inject [`Sim::inject_rp_perturbation`] after exactly this many
    /// dispatched events.
    pub flip_at: Option<u64>,
}

impl DivergeSpec {
    /// Parse `heap`, `wheel`, `heap+flip@N`, `wheel+flip@N`.
    pub fn parse(s: &str) -> Option<DivergeSpec> {
        let (base, flip_at) = match s.split_once('+') {
            Some((b, rest)) => (b, Some(rest.strip_prefix("flip@")?.parse().ok()?)),
            None => (s, None),
        };
        let backend = match base {
            "heap" => Backend::Heap,
            "wheel" => Backend::Wheel,
            _ => return None,
        };
        Some(DivergeSpec { backend, flip_at })
    }

    /// Render back to the CLI spelling.
    pub fn label(&self) -> String {
        match self.flip_at {
            Some(n) => format!("{}+flip@{n}", self.backend.name()),
            None => self.backend.name().to_string(),
        }
    }
}

/// Build (without running) the sim a diverge scenario uses, with the
/// spec's backend forced. `None` for an unknown scenario name.
pub fn scenario_sim(scenario: &str, scale: Scale, seed: u64, backend: Backend) -> Option<Sim> {
    let mut sim = match scenario {
        "chaos" => build_chaos(scale, seed),
        "incast" => observatory::scenario_sim("incast", scale, seed)?.0,
        _ => return None,
    };
    sim.set_scheduler_backend(backend);
    Some(sim)
}

/// The faulted 6-sender incast pinned by the golden-engine and
/// scheduler-differential suites: data loss, CNP loss and a mid-run link
/// flap, RoCC end to end. `Paper` scale grows the flows, same faults.
fn build_chaos(scale: Scale, seed: u64) -> Sim {
    let size = match scale {
        Scale::Quick => 1_000_000u64,
        Scale::Paper => 4_000_000,
    };
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..6 {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        srcs.push(h);
    }
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        b.build(),
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// The outcome of one `repro diverge` comparison, ready for the CLI.
#[derive(Debug)]
pub struct DivergeResult {
    /// The bisector's verdict.
    pub outcome: BisectOutcome,
    /// True when the specs were swapped so the perturbed run is side B
    /// (the bisector replays injections on B only); `event_a`/`event_b`
    /// and digest columns in the report are swapped accordingly.
    pub swapped: bool,
    /// Spec that ran as side A (after any swap).
    pub spec_a: DivergeSpec,
    /// Spec that ran as side B (after any swap).
    pub spec_b: DivergeSpec,
}

/// Run two specs of `scenario` in lockstep and bisect their first
/// divergence. Specs with an injected flip are run as side B (swapping
/// if needed — the bisector replays injections on B); two flipped specs
/// are rejected.
pub fn diverge(
    spec_a: DivergeSpec,
    spec_b: DivergeSpec,
    scenario: &str,
    scale: Scale,
    seed: u64,
    max_events: u64,
) -> Result<DivergeResult, String> {
    let (spec_a, spec_b, swapped) = match (spec_a.flip_at, spec_b.flip_at) {
        (Some(_), Some(_)) => {
            return Err("at most one spec may carry +flip@N".to_string());
        }
        (Some(_), None) => (spec_b, spec_a, true),
        _ => (spec_a, spec_b, false),
    };
    let mut a = scenario_sim(scenario, scale, seed, spec_a.backend)
        .ok_or_else(|| format!("unknown diverge scenario: {scenario}"))?;
    let mut b = scenario_sim(scenario, scale, seed, spec_b.backend)
        .expect("scenario validated above");
    let opts = BisectOptions {
        scan_stride: DEFAULT_SCAN_STRIDE,
        max_events,
        perturb_b_at: spec_b.flip_at,
    };
    let outcome = bisect_divergence(&mut a, &mut b, &opts);
    Ok(DivergeResult { outcome, swapped, spec_a, spec_b })
}

/// Run one spec of `scenario` to completion with the strided digest
/// ledger enabled and return the `rocc-digest-ledger/v1` JSONL.
pub fn record_ledger(
    spec: DivergeSpec,
    scenario: &str,
    scale: Scale,
    seed: u64,
    stride: u64,
) -> Result<String, String> {
    let mut sim = scenario_sim(scenario, scale, seed, spec.backend)
        .ok_or_else(|| format!("unknown diverge scenario: {scenario}"))?;
    sim.enable_digest_ledger(stride);
    if let Some(at) = spec.flip_at {
        // Step manually up to the flip point and inject, then hand the
        // run to the run loop, which owns ledger recording. (Manual
        // steps don't record, so a flipped ledger starts at the first
        // stride boundary past the flip; pre-flip rows come from the
        // clean side of the comparison.)
        while sim.events_processed() < at && sim.step() {}
        sim.inject_rp_perturbation();
    }
    let horizon = match scenario {
        "incast" => match scale {
            Scale::Quick => SimTime::from_millis(200),
            Scale::Paper => SimTime::from_millis(1000),
        },
        _ => SimTime::from_millis(100),
    };
    let verdict = sim.run_until_flows_done(horizon);
    if let Some(err) = verdict.err() {
        return Err(format!("ledger run failed: {err:?}"));
    }
    let ledger = sim
        .take_digest_ledger()
        .expect("ledger was enabled above");
    Ok(ledger.to_jsonl())
}

/// Parse two ledger files and report their first divergence (at ledger
/// stride resolution). `Ok(None)` when every comparable row matches.
pub fn diverge_ledgers(
    text_a: &str,
    text_b: &str,
) -> (
    Option<rocc_sim::digest::LedgerDivergence>,
    /* torn tails */ (bool, bool),
) {
    let pa = rocc_sim::digest::parse_ledger_jsonl(text_a);
    let pb = rocc_sim::digest::parse_ledger_jsonl(text_b);
    (
        rocc_sim::digest::first_ledger_divergence(&pa.entries, &pb.entries),
        (pa.torn_tail, pb.torn_tail),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_roundtrips() {
        let s = DivergeSpec::parse("wheel").unwrap();
        assert_eq!(s.backend, Backend::Wheel);
        assert_eq!(s.flip_at, None);
        let s = DivergeSpec::parse("heap+flip@1234").unwrap();
        assert_eq!(s.backend, Backend::Heap);
        assert_eq!(s.flip_at, Some(1234));
        assert_eq!(s.label(), "heap+flip@1234");
        assert!(DivergeSpec::parse("fifo").is_none());
        assert!(DivergeSpec::parse("wheel+flip@x").is_none());
        assert!(DivergeSpec::parse("wheel+thaw@3").is_none());
    }

    #[test]
    fn two_flipped_specs_are_rejected() {
        let f = DivergeSpec::parse("wheel+flip@10").unwrap();
        assert!(diverge(f, f, "chaos", Scale::Quick, 7, 1000).is_err());
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        let s = DivergeSpec::parse("wheel").unwrap();
        assert!(diverge(s, s, "nope", Scale::Quick, 7, 1000).is_err());
    }

    #[test]
    fn flipped_spec_runs_as_side_b() {
        let f = DivergeSpec::parse("wheel+flip@4000").unwrap();
        let c = DivergeSpec::parse("wheel").unwrap();
        let r = diverge(f, c, "chaos", Scale::Quick, 7, 12_000).expect("valid specs");
        assert!(r.swapped);
        assert_eq!(r.spec_b.flip_at, Some(4000));
        match r.outcome {
            BisectOutcome::Diverged(rep) => {
                assert_eq!(rep.first_divergent_event, 4000);
            }
            BisectOutcome::Identical { .. } => panic!("flip must diverge"),
        }
    }
}
