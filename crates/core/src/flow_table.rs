//! Flow tables: who gets the CNPs (paper §3.4).
//!
//! The CP must know which flows to notify. The paper's default tracks "the
//! flows currently in the queue" — table size bounded by the queue itself.
//! It also sketches alternatives; we implement three of the five:
//!
//! 1. [`InQueueTable`] — the default: a flow is present exactly while it
//!    has packets in the egress queue.
//! 2. [`BoundedAgeTable`] — option (2): capacity bounded by Fmax/Fmin (the
//!    maximum number of concurrent congesting flows) with age-based
//!    eviction.
//! 3. [`SamplingTable`] — options (4)/(5) (ElephantTrap / BubbleCache
//!    spirit): packets are sampled with probability p; sampled flows gain
//!    frequency, and the least-frequently-used entry is evicted when full.
//!    Elephants dominate samples, so persistent congesters stay resident.
//!
//! Every implementation exposes the same trait so the switch CC can swap
//! policies (the paper notes selective feedback trades stability margin
//! for state).

use rocc_sim::prelude::{FlowId, NodeId, SimTime};
use std::collections::HashMap;

/// A flow table entry: the flow and where its CNPs must be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEntry {
    /// The flow.
    pub flow: FlowId,
    /// The flow's source host.
    pub src: NodeId,
}

/// The CP's view of which flows should receive feedback.
pub trait FlowTable {
    /// A data packet of `flow` (from `src`) was enqueued.
    fn on_enqueue(&mut self, now: SimTime, flow: FlowId, src: NodeId, rand01: f64);

    /// A data packet of `flow` left the queue.
    fn on_dequeue(&mut self, now: SimTime, flow: FlowId);

    /// Flows to notify at this fair-rate interval.
    fn recipients(&mut self, now: SimTime, out: &mut Vec<FlowEntry>);

    /// Number of tracked flows (diagnostics).
    fn len(&self) -> usize;

    /// True when no flows are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append the table's dynamic state as plain words for the engine
    /// snapshot layer (entry count, then entries sorted by flow id).
    /// Stateless tables keep the default no-op.
    fn snapshot_state(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Restore state captured by [`FlowTable::snapshot_state`]. Short or
    /// malformed input leaves the table unchanged — the engine verifies
    /// snapshot digests before this is ever reached.
    fn restore_state(&mut self, state: &[u64]) {
        let _ = state;
    }
}

/// Decode the `(count, triples...)` layout shared by all three tables,
/// calling `insert` once per `(flow, a, b)` triple. Returns false (leaving
/// the caller's map untouched) when the input is short.
fn read_triples(state: &[u64], mut insert: impl FnMut(u64, u64, u64)) -> bool {
    let Some((&n, rest)) = state.split_first() else {
        return false;
    };
    let n = n as usize;
    if rest.len() < n * 3 {
        return false;
    }
    for c in rest[..n * 3].chunks_exact(3) {
        insert(c[0], c[1], c[2]);
    }
    true
}

/// Default policy: flows with at least one packet currently queued.
#[derive(Debug, Default)]
pub struct InQueueTable {
    counts: HashMap<FlowId, (u32, NodeId)>,
}

impl InQueueTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowTable for InQueueTable {
    fn on_enqueue(&mut self, _now: SimTime, flow: FlowId, src: NodeId, _rand01: f64) {
        let e = self.counts.entry(flow).or_insert((0, src));
        e.0 += 1;
        e.1 = src;
    }

    fn on_dequeue(&mut self, _now: SimTime, flow: FlowId) {
        if let Some(e) = self.counts.get_mut(&flow) {
            // Saturating: enqueue/dequeue can desynchronize under fault
            // churn (a crashed host's flow re-entering the queue while an
            // entry count was already at its floor), and a stray dequeue
            // must degrade to a no-op rather than panic on underflow.
            e.0 = e.0.saturating_sub(1);
            if e.0 == 0 {
                self.counts.remove(&flow);
            }
        }
    }

    fn recipients(&mut self, _now: SimTime, out: &mut Vec<FlowEntry>) {
        out.extend(
            self.counts
                .iter()
                .map(|(&flow, &(_, src))| FlowEntry { flow, src }),
        );
        // Deterministic order regardless of hash-map iteration.
        out.sort_by_key(|e| e.flow);
    }

    fn len(&self) -> usize {
        self.counts.len()
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.counts.len() as u64);
        let mut rows: Vec<_> = self
            .counts
            .iter()
            .map(|(&flow, &(count, src))| (flow.0, count as u64, src.0 as u64))
            .collect();
        rows.sort_unstable();
        for (flow, count, src) in rows {
            out.extend_from_slice(&[flow, count, src]);
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        let mut counts = HashMap::new();
        if read_triples(state, |flow, count, src| {
            counts.insert(FlowId(flow), (count as u32, NodeId(src as usize)));
        }) {
            self.counts = counts;
        }
    }
}

/// Bounded table with age-based eviction: RoCC's Fmin bounds concurrent
/// congesting flows by Fmax/Fmin, so a table of that size suffices; the
/// stalest entry is evicted on overflow.
#[derive(Debug)]
pub struct BoundedAgeTable {
    capacity: usize,
    /// flow → (source, last time a packet was seen).
    entries: HashMap<FlowId, (NodeId, SimTime)>,
    /// Entries idle longer than this are dropped from the recipient list.
    idle_timeout_ns: u64,
}

impl BoundedAgeTable {
    /// `capacity` is typically `Fmax / Fmin` (400 for the 40 Gb/s profile).
    pub fn new(capacity: usize, idle_timeout_ns: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedAgeTable {
            capacity,
            entries: HashMap::new(),
            idle_timeout_ns,
        }
    }
}

impl FlowTable for BoundedAgeTable {
    fn on_enqueue(&mut self, now: SimTime, flow: FlowId, src: NodeId, _rand01: f64) {
        if !self.entries.contains_key(&flow) && self.entries.len() >= self.capacity {
            // Evict the stalest entry (deterministic tie-break on flow id).
            if let Some((&victim, _)) = self
                .entries
                .iter()
                .min_by_key(|(f, (_, t))| (t.as_nanos(), f.0))
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(flow, (src, now));
    }

    fn on_dequeue(&mut self, _now: SimTime, _flow: FlowId) {
        // Age-based: dequeues do not remove entries.
    }

    fn recipients(&mut self, now: SimTime, out: &mut Vec<FlowEntry>) {
        let timeout = self.idle_timeout_ns;
        self.entries
            .retain(|_, (_, t)| now.as_nanos().saturating_sub(t.as_nanos()) <= timeout);
        out.extend(
            self.entries
                .iter()
                .map(|(&flow, &(src, _))| FlowEntry { flow, src }),
        );
        out.sort_by_key(|e| e.flow);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.entries.len() as u64);
        let mut rows: Vec<_> = self
            .entries
            .iter()
            .map(|(&flow, &(src, seen))| (flow.0, src.0 as u64, seen.as_nanos()))
            .collect();
        rows.sort_unstable();
        for (flow, src, seen) in rows {
            out.extend_from_slice(&[flow, src, seen]);
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        let mut entries = HashMap::new();
        if read_triples(state, |flow, src, seen| {
            entries.insert(
                FlowId(flow),
                (NodeId(src as usize), SimTime::from_nanos(seen)),
            );
        }) {
            self.entries = entries;
        }
    }
}

/// Sampling table in the ElephantTrap/BubbleCache spirit: sample arriving
/// packets with probability `p`; sampled flows bump a frequency counter;
/// when full, the least-frequently-used entry is halved/evicted. Elephants
/// dominate samples and stay resident — at the cost of missing some mice
/// (lower stability margin, as the paper notes).
#[derive(Debug)]
pub struct SamplingTable {
    capacity: usize,
    sample_prob: f64,
    entries: HashMap<FlowId, (NodeId, u32)>,
}

impl SamplingTable {
    /// Sample with probability `sample_prob`, keep at most `capacity` flows.
    pub fn new(capacity: usize, sample_prob: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&sample_prob),
            "probability out of range"
        );
        SamplingTable {
            capacity,
            sample_prob,
            entries: HashMap::new(),
        }
    }
}

impl FlowTable for SamplingTable {
    fn on_enqueue(&mut self, _now: SimTime, flow: FlowId, src: NodeId, rand01: f64) {
        if rand01 >= self.sample_prob {
            return;
        }
        if let Some(e) = self.entries.get_mut(&flow) {
            e.1 = e.1.saturating_add(1);
            return;
        }
        if self.entries.len() >= self.capacity {
            // LFU eviction (deterministic tie-break on flow id).
            if let Some((&victim, &(_, freq))) = self
                .entries
                .iter()
                .min_by_key(|(f, (_, c))| (*c, f.0))
            {
                if freq > 1 {
                    // Decay instead of evict: the newcomer must keep
                    // sampling to displace a strong elephant.
                    for e in self.entries.values_mut() {
                        e.1 /= 2;
                    }
                    return;
                }
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(flow, (src, 1));
    }

    fn on_dequeue(&mut self, _now: SimTime, _flow: FlowId) {}

    fn recipients(&mut self, _now: SimTime, out: &mut Vec<FlowEntry>) {
        out.extend(
            self.entries
                .iter()
                .map(|(&flow, &(src, _))| FlowEntry { flow, src }),
        );
        out.sort_by_key(|e| e.flow);
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.entries.len() as u64);
        let mut rows: Vec<_> = self
            .entries
            .iter()
            .map(|(&flow, &(src, freq))| (flow.0, src.0 as u64, freq as u64))
            .collect();
        rows.sort_unstable();
        for (flow, src, freq) in rows {
            out.extend_from_slice(&[flow, src, freq]);
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        let mut entries = HashMap::new();
        if read_triples(state, |flow, src, freq| {
            entries.insert(FlowId(flow), (NodeId(src as usize), freq as u32));
        }) {
            self.entries = entries;
        }
    }
}

/// Which flow-table policy a RoCC switch uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowTablePolicy {
    /// [`InQueueTable`] (paper default).
    InQueue,
    /// [`BoundedAgeTable`] with the given capacity and idle timeout (ns).
    BoundedAge {
        /// Maximum tracked flows.
        capacity: usize,
        /// Idle eviction horizon in nanoseconds.
        idle_timeout_ns: u64,
    },
    /// [`SamplingTable`] with the given capacity and sampling probability.
    Sampling {
        /// Maximum tracked flows.
        capacity: usize,
        /// Per-packet sampling probability.
        sample_prob: f64,
    },
}

impl FlowTablePolicy {
    /// Instantiate the table.
    pub fn build(&self) -> Box<dyn FlowTable + Send> {
        match *self {
            FlowTablePolicy::InQueue => Box::new(InQueueTable::new()),
            FlowTablePolicy::BoundedAge {
                capacity,
                idle_timeout_ns,
            } => Box::new(BoundedAgeTable::new(capacity, idle_timeout_ns)),
            FlowTablePolicy::Sampling {
                capacity,
                sample_prob,
            } => Box::new(SamplingTable::new(capacity, sample_prob)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn in_queue_tracks_occupancy() {
        let mut tab = InQueueTable::new();
        tab.on_enqueue(t(0), FlowId(1), NodeId(10), 0.0);
        tab.on_enqueue(t(0), FlowId(1), NodeId(10), 0.0);
        tab.on_enqueue(t(0), FlowId(2), NodeId(11), 0.0);
        assert_eq!(tab.len(), 2);
        tab.on_dequeue(t(1), FlowId(1));
        assert_eq!(tab.len(), 2, "flow 1 still has one packet queued");
        tab.on_dequeue(t(1), FlowId(1));
        assert_eq!(tab.len(), 1, "flow 1 left the queue");
        let mut out = Vec::new();
        tab.recipients(t(2), &mut out);
        assert_eq!(
            out,
            vec![FlowEntry {
                flow: FlowId(2),
                src: NodeId(11)
            }]
        );
    }

    #[test]
    fn in_queue_dequeue_of_unknown_flow_is_noop() {
        let mut tab = InQueueTable::new();
        tab.on_dequeue(t(0), FlowId(99));
        assert!(tab.is_empty());
    }

    #[test]
    fn in_queue_survives_desynchronized_churn() {
        // Fault-injected crashes can replay dequeues for counts that were
        // already drained; the table must stay consistent, never panic.
        let mut tab = InQueueTable::new();
        tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.0);
        tab.on_dequeue(t(1), FlowId(1));
        tab.on_dequeue(t(1), FlowId(1)); // stray duplicate
        assert!(tab.is_empty());
        // Re-entry after the churn behaves like a fresh flow.
        tab.on_enqueue(t(2), FlowId(1), NodeId(2), 0.0);
        assert_eq!(tab.len(), 1);
        let mut out = Vec::new();
        tab.recipients(t(2), &mut out);
        assert_eq!(out[0].src, NodeId(2), "source updated on re-entry");
    }

    #[test]
    fn bounded_age_evicts_stalest() {
        let mut tab = BoundedAgeTable::new(2, u64::MAX);
        tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.0);
        tab.on_enqueue(t(1), FlowId(2), NodeId(2), 0.0);
        tab.on_enqueue(t(2), FlowId(3), NodeId(3), 0.0); // evicts flow 1
        let mut out = Vec::new();
        tab.recipients(t(3), &mut out);
        let flows: Vec<_> = out.iter().map(|e| e.flow).collect();
        assert_eq!(flows, vec![FlowId(2), FlowId(3)]);
    }

    #[test]
    fn bounded_age_idle_timeout_drops_entries() {
        let mut tab = BoundedAgeTable::new(8, 1_000); // 1 µs horizon
        tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.0);
        tab.on_enqueue(t(5), FlowId(2), NodeId(2), 0.0);
        let mut out = Vec::new();
        tab.recipients(t(5), &mut out);
        let flows: Vec<_> = out.iter().map(|e| e.flow).collect();
        assert_eq!(flows, vec![FlowId(2)], "flow 1 idled out");
    }

    #[test]
    fn sampling_table_respects_probability() {
        let mut tab = SamplingTable::new(8, 0.5);
        tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.7); // not sampled
        assert!(tab.is_empty());
        tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.2); // sampled
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn sampling_table_keeps_elephants_under_pressure() {
        let mut tab = SamplingTable::new(2, 1.0);
        // Elephant flow 1 sampled many times.
        for _ in 0..10 {
            tab.on_enqueue(t(0), FlowId(1), NodeId(1), 0.0);
        }
        tab.on_enqueue(t(0), FlowId(2), NodeId(2), 0.0);
        // A parade of one-hit mice must not displace the elephant.
        for m in 10..30 {
            tab.on_enqueue(t(1), FlowId(m), NodeId(5), 0.0);
        }
        let mut out = Vec::new();
        tab.recipients(t(2), &mut out);
        assert!(
            out.iter().any(|e| e.flow == FlowId(1)),
            "elephant evicted: {out:?}"
        );
        assert!(tab.len() <= 2);
    }

    #[test]
    fn policy_builders() {
        assert_eq!(FlowTablePolicy::InQueue.build().len(), 0);
        assert_eq!(
            FlowTablePolicy::BoundedAge {
                capacity: 4,
                idle_timeout_ns: 1
            }
            .build()
            .len(),
            0
        );
        assert_eq!(
            FlowTablePolicy::Sampling {
                capacity: 4,
                sample_prob: 0.1
            }
            .build()
            .len(),
            0
        );
    }
}
