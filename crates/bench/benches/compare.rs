//! Benchmarks regenerating the cross-scheme comparisons: Fig. 11
//! (RoCC vs TIMELY/QCN/DCQCN/DCQCN+PI/HPCC), Fig. 12a/b (multi-bottleneck
//! and asymmetric fairness), and Fig. 19 (baseline verification).

use criterion::{criterion_group, criterion_main, Criterion};
use rocc_experiments::{micro, Scale};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let rows = micro::fig11(Scale::Quick);
    for r in &rows {
        let n = r.per_flow_rate.len() as f64;
        let avg = r.per_flow_rate.iter().sum::<f64>() / n / 1e9;
        eprintln!(
            "[fig11] {:>9}: avg {:.2} Gb/s, queue {:.0} B, util {:.1}%",
            r.scheme.name(),
            avg,
            r.queue_mean,
            r.util_mean * 100.0
        );
    }
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("six_scheme_comparison", |b| {
        b.iter(|| black_box(micro::fig11(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let a = micro::fig12a(Scale::Quick);
    for r in &a {
        eprintln!(
            "[fig12a] {:>6}: D0 {:.2} Gb/s, D5 {:.2} Gb/s (expect both ~4.8)",
            r.scheme.name(),
            r.throughput[0] / 1e9,
            r.throughput[5] / 1e9
        );
    }
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("multi_bottleneck", |b| {
        b.iter(|| black_box(micro::fig12a(Scale::Quick)))
    });
    g.bench_function("asymmetric", |b| {
        b.iter(|| black_box(micro::fig12b(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let runs = micro::fig19(Scale::Quick);
    for r in &runs {
        eprintln!(
            "[fig19] {} verification series: {} samples x {} flows",
            r.scheme.name(),
            r.flow_series[0].len(),
            r.flow_series.len()
        );
    }
    let mut g = c.benchmark_group("fig19");
    g.sample_size(10);
    g.bench_function("staggered_four_flow_verification", |b| {
        b.iter(|| black_box(micro::fig19(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11, bench_fig12, bench_fig19);
criterion_main!(benches);
