//! Host-side rate computation (paper §3.6).
//!
//! RoCC does not require the switch to carry out the rate computation: the
//! CP can instead ship its raw queue depth (plus enough identity to pick a
//! parameter profile) and let the host replicate Alg. 1. This flexibility
//! matters on legacy ASICs with no arithmetic in the feedback path.
//!
//! The reaction point here keeps one [`FairRateCalculator`] replica per
//! congestion point it hears from, feeds each queue report into the right
//! replica, and then applies the exact same Alg. 2 arbitration and fast
//! recovery as the switch-computed mode — so multi-bottleneck behaviour is
//! unchanged.

use crate::cp::FairRateCalculator;
use crate::params::{CpParams, RpParams};
use crate::rp::RECOVERY_TOKEN;
use rocc_sim::cc::{FeedbackEvent, HostCc, HostCcCtx, RateDecision};
use rocc_sim::prelude::{BitRate, CpId};
use std::collections::HashMap;

/// The "simple registry" of §3.6: map a CP's advertised Fmax to its full
/// parameter profile.
pub fn params_for_f_max(f_max_units: u32) -> CpParams {
    if f_max_units >= 10_000 {
        CpParams::for_100g()
    } else if f_max_units >= 4_000 {
        CpParams::for_40g()
    } else {
        CpParams::for_10g_testbed()
    }
}

/// Reaction point that computes the fair rate locally from CP queue
/// reports (§3.6 mode), then runs the standard Alg. 2 arbitration.
pub struct HostCalcRoccCc {
    p: RpParams,
    r_max: BitRate,
    /// Per-CP fair-rate replicas.
    calcs: HashMap<CpId, FairRateCalculator>,
    r_cur: BitRate,
    cp_cur: Option<CpId>,
    installed: bool,
}

impl HostCalcRoccCc {
    /// A fresh flow starts uninstalled (line rate).
    pub fn new(p: RpParams, r_max: BitRate) -> Self {
        HostCalcRoccCc {
            p,
            r_max,
            calcs: HashMap::new(),
            r_cur: r_max,
            cp_cur: None,
            installed: false,
        }
    }

    /// Number of CP replicas currently tracked (diagnostics).
    pub fn tracked_cps(&self) -> usize {
        self.calcs.len()
    }

    /// True while the rate limiter is installed.
    pub fn is_installed(&self) -> bool {
        self.installed
    }
}

impl HostCc for HostCalcRoccCc {
    fn decision(&self) -> RateDecision {
        if self.installed {
            RateDecision::line_rate(self.r_cur.min(self.r_max))
        } else {
            RateDecision::line_rate(self.r_max)
        }
    }

    fn on_feedback(&mut self, ctx: &mut HostCcCtx, fb: FeedbackEvent) {
        let FeedbackEvent::RoccQueueReport {
            q_cur_units,
            f_max_units,
            cp,
        } = fb
        else {
            return;
        };
        // Replicate the CP's Alg. 1 locally.
        let calc = self.calcs.entry(cp).or_insert_with(|| {
            FairRateCalculator::new(params_for_f_max(f_max_units))
        });
        let q_bytes = q_cur_units as u64 * calc.params().delta_q;
        let (units, _) = calc.update(q_bytes);
        if !calc.is_congested() {
            return; // this CP imposes no limit
        }
        let r_rcvd = BitRate::from_bps(self.p.delta_f.as_bps() * units as u64);
        // Alg. 2 arbitration, unchanged.
        let accept =
            !self.installed || r_rcvd <= self.r_cur || self.cp_cur == Some(cp);
        if accept {
            self.r_cur = r_rcvd;
            self.cp_cur = Some(cp);
            self.installed = true;
            ctx.set_timer(RECOVERY_TOKEN, self.p.recovery_timer);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCcCtx, token: u8) {
        if token != RECOVERY_TOKEN || !self.installed {
            return;
        }
        if self.r_cur > self.r_max {
            self.installed = false;
            self.cp_cur = None;
            self.r_cur = self.r_max;
            // Reports stopped arriving: discard stale replicas so a later
            // congestion episode starts from fresh CP state.
            self.calcs.clear();
            return;
        }
        self.r_cur = self.r_cur.saturating_double();
        ctx.set_timer(RECOVERY_TOKEN, self.p.recovery_timer);
    }

    fn snapshot_state(&self, out: &mut Vec<u64>) {
        out.push(self.calcs.len() as u64);
        let mut cps: Vec<_> = self.calcs.keys().copied().collect();
        cps.sort_unstable_by_key(|cp| (cp.node.0, cp.port.0));
        for cp in cps {
            out.push(cp.node.0 as u64);
            out.push(cp.port.0 as u64);
            let calc = &self.calcs[&cp];
            // Fmax doubles as the profile key (see `params_for_f_max`), so
            // replicas can be reconstructed without serializing parameters.
            out.push(calc.params().f_max as u64);
            calc.snapshot_state(out);
        }
        out.push(self.r_cur.as_bps());
        out.push(self.installed as u64);
        match self.cp_cur {
            None => out.extend_from_slice(&[0, 0, 0]),
            Some(cp) => out.extend_from_slice(&[1, cp.node.0 as u64, cp.port.0 as u64]),
        }
    }

    fn restore_state(&mut self, state: &[u64]) {
        let per_entry = 3 + FairRateCalculator::STATE_WORDS;
        let Some((&n, rest)) = state.split_first() else {
            return; // digest-verified upstream; short input is a no-op
        };
        let n = n as usize;
        if rest.len() != n * per_entry + 5 {
            return;
        }
        let mut calcs = HashMap::new();
        for e in rest[..n * per_entry].chunks_exact(per_entry) {
            let cp = CpId {
                node: rocc_sim::prelude::NodeId(e[0] as usize),
                port: rocc_sim::prelude::PortId(e[1] as usize),
            };
            let mut calc = FairRateCalculator::new(params_for_f_max(e[2] as u32));
            calc.restore_state(&e[3..]);
            calcs.insert(cp, calc);
        }
        let tail = &rest[n * per_entry..];
        self.calcs = calcs;
        self.r_cur = BitRate::from_bps(tail[0]);
        self.installed = tail[1] != 0;
        self.cp_cur = (tail[2] != 0).then(|| CpId {
            node: rocc_sim::prelude::NodeId(tail[3] as usize),
            port: rocc_sim::prelude::PortId(tail[4] as usize),
        });
    }
}

/// Factory installing [`HostCalcRoccCc`] on every flow.
#[derive(Debug, Clone, Default)]
pub struct HostCalcRoccFactory {
    /// RP parameters.
    pub params: RpParams,
}

impl rocc_sim::cc::HostCcFactory for HostCalcRoccFactory {
    fn make(
        &self,
        _flow: rocc_sim::prelude::FlowId,
        link_rate: BitRate,
    ) -> Box<dyn HostCc> {
        Box::new(HostCalcRoccCc::new(self.params, link_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocc_sim::prelude::{NodeId, PortId, SimTime};

    fn ctx() -> HostCcCtx {
        HostCcCtx {
            now: SimTime::ZERO,
            link_rate: BitRate::from_gbps(40),
            set_timers: Vec::new(),
            cancel_timers: Vec::new(),
            events: Vec::new(),
            event_mask: rocc_sim::telemetry::EventMask::NONE,
        }
    }

    fn cp(n: usize) -> CpId {
        CpId {
            node: NodeId(n),
            port: PortId(0),
        }
    }

    fn report(q_units: u32, f_max: u32, c: CpId) -> FeedbackEvent {
        FeedbackEvent::RoccQueueReport {
            q_cur_units: q_units,
            f_max_units: f_max,
            cp: c,
        }
    }

    #[test]
    fn registry_maps_f_max_to_profiles() {
        assert_eq!(params_for_f_max(10_000), CpParams::for_100g());
        assert_eq!(params_for_f_max(4_000), CpParams::for_40g());
        assert_eq!(params_for_f_max(1_000), CpParams::for_10g_testbed());
    }

    #[test]
    fn deep_queue_report_installs_md_rate() {
        let mut cc = HostCalcRoccCc::new(RpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        // Queue above Qmax (600 ΔQ units for 40G): local MD slams to Fmin.
        cc.on_feedback(&mut c, report(700, 4000, cp(1)));
        assert!(cc.is_installed());
        assert_eq!(cc.decision().rate, BitRate::from_mbps(100)); // Fmin
        assert_eq!(cc.tracked_cps(), 1);
    }

    #[test]
    fn replica_matches_switch_computation() {
        // Feeding the same queue trajectory into the host replica and into
        // a directly-driven calculator produces identical rates.
        let mut direct = FairRateCalculator::new(CpParams::for_40g());
        let mut cc = HostCalcRoccCc::new(RpParams::default(), BitRate::from_gbps(40));
        let trajectory = [700u32, 400, 300, 260, 250, 250, 240, 255, 250];
        for q in trajectory {
            let (expect, _) = direct.update(q as u64 * 600);
            let mut c = ctx();
            cc.on_feedback(&mut c, report(q, 4000, cp(1)));
            if direct.is_congested() {
                let expect_rate = BitRate::from_mbps(10).scale(expect as f64);
                assert_eq!(cc.decision().rate, expect_rate, "at q = {q}");
            }
        }
    }

    #[test]
    fn multi_cp_arbitration_still_applies() {
        let mut cc = HostCalcRoccCc::new(RpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        // CP 1 congested mildly; its replica computes some rate R1.
        cc.on_feedback(&mut c, report(400, 4000, cp(1)));
        let r1 = cc.decision().rate;
        // CP 2 reports a much deeper queue: its MD rate is lower → accepted.
        cc.on_feedback(&mut c, report(700, 4000, cp(2)));
        assert!(cc.decision().rate < r1);
        assert_eq!(cc.tracked_cps(), 2);
    }

    #[test]
    fn uncongested_reports_do_not_install() {
        let mut cc = HostCalcRoccCc::new(RpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_feedback(&mut c, report(0, 4000, cp(1)));
        assert!(!cc.is_installed(), "empty queue must not throttle");
    }

    #[test]
    fn recovery_clears_replicas() {
        let mut cc = HostCalcRoccCc::new(RpParams::default(), BitRate::from_gbps(40));
        let mut c = ctx();
        cc.on_feedback(&mut c, report(700, 4000, cp(1)));
        assert!(cc.is_installed());
        for _ in 0..16 {
            let mut c = ctx();
            cc.on_timer(&mut c, RECOVERY_TOKEN);
            if !cc.is_installed() {
                break;
            }
        }
        assert!(!cc.is_installed());
        assert_eq!(cc.tracked_cps(), 0, "stale replicas must be dropped");
    }
}
