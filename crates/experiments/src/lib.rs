//! # rocc-experiments — the reproduction harness
//!
//! One module per table/figure of the RoCC paper (CoNEXT '20). Each
//! experiment builds its scenario from `rocc-sim` topologies, wires in the
//! scheme under test from `rocc-core`/`rocc-baselines`, drives the
//! published workloads from `rocc-workloads`, and returns structured
//! results; the `repro` binary renders them as the paper's rows/series.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig. 5 (margin surface) | [`analytic::fig5`] |
//! | Fig. 6 (Bode, N = 2 vs 10) | [`analytic::fig6`] |
//! | Fig. 7a/b (margin & bandwidth vs N) | [`analytic::fig7`] |
//! | Fig. 8 (fairness/stability) | [`micro::fig8`] |
//! | Fig. 9 (convergence) | [`micro::fig9`] |
//! | Fig. 11a–c (scheme comparison) | [`micro::fig11`] |
//! | Fig. 12a (multi-bottleneck) | [`micro::fig12a`] |
//! | Fig. 12b (asymmetric) | [`micro::fig12b`] |
//! | Fig. 13 (testbed vs sim) | [`micro::fig13`] |
//! | Figs. 14–16 (FCT by bin) | [`fct::fct_comparison`] |
//! | Table 3 (rate allocation) | [`fct::table3`] |
//! | Fig. 17 (queues & PFC by CP) | [`fct::fct_comparison`] (side data) |
//! | Fig. 18 (unlimited buffer) | [`fct::fold_increase`] |
//! | Fig. 19 (baseline verification) | [`micro::fig19`] |
//! | Fig. 20 (lossy go-back-N) | [`fct::fold_increase`] |
//! | Table 1 (qualitative) | [`table1::table1`] |
//!
//! Beyond the paper's figures, [`chaos`] stresses the robustness claims
//! directly with the simulator's fault-injection layer (CNP loss sweeps
//! and total-blackout recovery), and [`trace`] replays micro scenarios
//! with the structured telemetry layer enabled, exporting the typed
//! event timeline, the metrics registry, and simulator self-profiling
//! (`repro trace <scenario>`).
//!
//! Grid-shaped experiments run under the [`supervisor`]: every cell is
//! panic-isolated, classified into a typed outcome, retried when
//! transient, quarantined when not, and — with a checkpoint journal
//! attached — resumable after a crash with byte-identical aggregates.

#![warn(missing_docs)]

pub mod ablation;
pub mod analytic;
pub mod chaos;
pub mod csv;
pub mod diverge;
pub mod fct;
pub mod micro;
pub mod observatory;
pub mod parallel;
pub mod profiling;
pub mod scenarios;
pub mod schemes;
pub mod supervisor;
pub mod table1;
pub mod trace;

pub use schemes::Scheme;

/// Experiment scale: `Quick` finishes in seconds-to-minutes on a laptop
/// (reduced hosts/duration/repetitions, same oversubscription and traffic
/// shape); `Paper` uses the published dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensions for CI and `cargo bench`.
    Quick,
    /// The paper's dimensions (30 hosts/edge, 2 trunks, 5 repetitions).
    Paper,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}
