//! Integration tests for the engine performance observatory: the
//! `rocc-perf-profile/v1` artifact, the manual-stepping API, and the
//! reset-safe `Sim::profile` window (the warm-up double-count regression).

use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

fn incast(seed: u64) -> Sim {
    let (topo, srcs, dst) = dumbbell(4, 40);
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    sim.trace.sample_period = Some(SimDuration::from_micros(10));
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 500_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    sim
}

/// Regression (ISSUE 7 satellite): `Sim::profile` used to double-count
/// warm-up work when `run_until_flows_done` followed a manual `step` loop
/// — the events/sim-time window was anchored at construction, not at the
/// last reset. `reset_profile` re-bases all three anchors (wall, events,
/// sim time), so the reported window covers exactly the post-reset run.
#[test]
fn profile_window_excludes_stepped_warmup_after_reset() {
    let mut sim = incast(7);
    // Warm up by manual stepping.
    const WARMUP: u64 = 500;
    for _ in 0..WARMUP {
        assert!(sim.step(), "warm-up drained the event heap");
    }
    assert_eq!(sim.events_processed(), WARMUP);
    let warm = sim.profile();
    assert_eq!(warm.events_processed, WARMUP);
    assert!(warm.sim_seconds > 0.0);

    sim.reset_profile();
    // Immediately after a reset the window is empty on every axis.
    let fresh = sim.profile();
    assert_eq!(fresh.events_processed, 0);
    assert_eq!(fresh.wall_seconds, 0.0);
    assert_eq!(fresh.sim_seconds, 0.0);

    sim.run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();
    let total = sim.events_processed();
    let p = sim.profile();
    // The window covers only the post-reset run: warm-up events are not
    // double-counted into events/sec.
    assert_eq!(p.events_processed, total - WARMUP);
    assert!(p.wall_seconds > 0.0);
    assert!(p.sim_seconds > 0.0);
    assert!(p.events_per_sec().is_finite() && p.events_per_sec() > 0.0);
}

/// A run driven entirely by `Sim::step` is bit-identical to the same seed
/// driven by `run_until_flows_done` — stepping is the same engine loop,
/// one event at a time (including the one-shot sampling bootstrap).
#[test]
fn stepped_run_matches_batch_run() {
    let mut batch = incast(42);
    batch
        .run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();

    let mut stepped = incast(42);
    while stepped.trace.fcts.len() < 4 {
        assert!(stepped.step(), "event heap drained before flows finished");
    }

    assert_eq!(batch.events_processed(), stepped.events_processed());
    let fcts = |s: &Sim| -> Vec<(FlowId, u64)> {
        s.trace.fcts.iter().map(|r| (r.flow, r.end.as_nanos())).collect()
    };
    assert_eq!(fcts(&batch), fcts(&stepped));
    assert_eq!(batch.trace.drops, stepped.trace.drops);
    assert_eq!(batch.trace.ctrl_emitted, stepped.trace.ctrl_emitted);
}

/// Acceptance: the `rocc-perf-profile/v1` artifact carries per-phase
/// shares that sum to within 5% of the total, plus the scheduler
/// introspection blocks (heap-depth series, burst histogram, dispatch
/// mix, slab and fastmap load).
#[test]
fn perf_profile_artifact_is_complete_and_consistent() {
    let mut sim = incast(1);
    sim.enable_profiler();
    sim.run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();

    let shares = sim.kernel.prof.phase_shares(sim.profiled_pushes());
    let total: f64 = shares.iter().map(|(_, share, _)| share).sum();
    assert!(
        (total - 1.0).abs() < 0.05,
        "phase shares sum to {total}, expected 1.0 ± 0.05"
    );
    // Counts are exact even though timing is sampled: every phase that the
    // incast exercises shows up.
    let count_of = |name: &str| -> u64 {
        shares
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, c)| *c)
            .unwrap_or(0)
    };
    for phase in ["sched_pop", "switch_forward", "host_compute", "cp_tick", "dispatch"] {
        assert!(count_of(phase) > 0, "phase {phase} never entered");
    }

    let json = sim.perf_profile_json();
    assert!(json.contains("\"schema\":\"rocc-perf-profile/v1\""));
    assert!(json.contains("\"phases\":["));
    assert!(json.contains("\"burst_hist\":"));
    assert!(json.contains("\"heap_depth_series\":["));
    assert!(json.contains("\"dispatch_mix\":["));
    assert!(json.contains("\"flow_dir_entries\":4"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// The profiler composes with `reset_profile`: a profiled warm-up can be
/// discarded and the artifact then reports only the measured window.
#[test]
fn profiler_accumulators_follow_the_profile_window() {
    let mut sim = incast(7);
    sim.enable_profiler_with_stride(8);
    for _ in 0..200 {
        assert!(sim.step());
    }
    assert!(sim.kernel.prof.pops() > 0);
    sim.reset_profile();
    assert_eq!(sim.kernel.prof.pops(), 0, "reset kept scheduler counters");

    sim.run_until_flows_done(SimTime::from_millis(100))
        .assert_complete();
    let total = sim.events_processed();
    // Post-reset pops cover exactly the post-warm-up events.
    assert_eq!(sim.kernel.prof.pops(), total - 200);
    assert!(sim.kernel.prof.timed_events() > 0);
}
