//! Large-scale fat-tree experiments (§6.3 and App. A.2): flow completion
//! times by flow-size bin (Figs. 14–16), per-flow rate allocation
//! (Table 3), queue depth and PFC activation by congestion-point class
//! (Fig. 17), unlimited-buffer behaviour (Fig. 18), and the lossy
//! go-back-N study (Fig. 20).

use crate::micro::sim_with;
use crate::observatory::digest;
use crate::parallel::ExecMode;
use crate::scenarios::{self, FatTree};
use crate::schemes::Scheme;
use crate::supervisor::{CampaignReport, FnCodec, Supervisor};
use crate::Scale;
use rocc_sim::prelude::*;
use rocc_stats::{bin_values, mean_ci95, percentile, MeanCi};
use rocc_workloads::{FlowSizeDist, PoissonWorkload};

/// Which workload distribution drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// DCTCP WebSearch (throughput-sensitive large flows).
    WebSearch,
    /// Facebook Hadoop (latency-sensitive small flows).
    FbHadoop,
}

impl Workload {
    /// The distribution object.
    pub fn dist(self) -> FlowSizeDist {
        match self {
            Workload::WebSearch => FlowSizeDist::web_search(),
            Workload::FbHadoop => FlowSizeDist::fb_hadoop(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::WebSearch => "WebSearch",
            Workload::FbHadoop => "FB_Hadoop",
        }
    }
}

/// Switch buffering regime for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRegime {
    /// PFC-protected lossless fabric (the default, §6.3).
    Pfc,
    /// PFC off, unbounded buffers (Fig. 18).
    Unlimited,
    /// PFC off, tail-drop at 3× the PFC threshold, go-back-N recovery
    /// (Fig. 20 / App. A.2).
    Lossy3x,
}

/// Fat-tree scenario dimensions.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeConfig {
    /// Hosts per edge switch (paper: 30).
    pub hosts_per_edge: usize,
    /// 100 GbE trunks per edge-core pair (paper: 2).
    pub trunks: usize,
    /// Flow-arrival window.
    pub window: SimDuration,
    /// Hard stop for the drain phase.
    pub max_drain: SimDuration,
    /// Independent repetitions (paper: 5).
    pub reps: usize,
}

impl FatTreeConfig {
    /// Dimensions for the requested scale; both preserve the paper's 2:1
    /// oversubscription and traffic pattern (edges 0/1 → edge 2).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => FatTreeConfig {
                hosts_per_edge: 6,
                trunks: 1,
                window: SimDuration::from_millis(8),
                max_drain: SimDuration::from_millis(800),
                reps: 2,
            },
            Scale::Paper => FatTreeConfig {
                hosts_per_edge: 30,
                trunks: 2,
                window: SimDuration::from_millis(50),
                max_drain: SimDuration::from_millis(3000),
                reps: 5,
            },
        }
    }
}

/// Everything measured in one fat-tree run.
#[derive(Debug)]
pub struct RunOutput {
    /// (flow size, FCT seconds) for every completed flow.
    pub fcts: Vec<(u64, f64)>,
    /// PFC pause events at core switches.
    pub pfc_core: u64,
    /// PFC pause events at ingress edge switches (edges 0, 1).
    pub pfc_ingress: u64,
    /// PFC pause events at the egress edge switch (edge 2).
    pub pfc_egress: u64,
    /// Mean queue depth over core CP ports (bytes).
    pub q_core: f64,
    /// Mean queue depth over ingress-edge uplink ports (bytes).
    pub q_ingress: f64,
    /// Mean queue depth over egress-edge host ports (bytes).
    pub q_egress: f64,
    /// Data bytes retransmitted (go-back-N).
    pub retx_bytes: u64,
    /// Data bytes transmitted (incl. retransmissions).
    pub tx_data_bytes: u64,
    /// Packets dropped (lossy regime).
    pub drops: u64,
    /// Number of flows offered.
    pub offered_flows: usize,
    /// True if every flow completed within the drain budget.
    pub all_completed: bool,
}

impl RunOutput {
    /// Canonical single-line JSON rendering for the checkpoint journal.
    /// Floats use Rust's shortest-roundtrip formatting, so
    /// [`RunOutput::from_json`] reconstructs bit-identical values and a
    /// journal-replayed cell aggregates byte-identically to a fresh run.
    pub fn to_json(&self) -> String {
        let fcts: Vec<String> = self
            .fcts
            .iter()
            .map(|&(size, fct)| format!("[{size},{fct:?}]"))
            .collect();
        format!(
            "{{\"fcts\":[{}],\"pfc\":[{},{},{}],\"q\":[{:?},{:?},{:?}],\
             \"retx_bytes\":{},\"tx_data_bytes\":{},\"drops\":{},\
             \"offered_flows\":{},\"all_completed\":{}}}",
            fcts.join(","),
            self.pfc_core,
            self.pfc_ingress,
            self.pfc_egress,
            self.q_core,
            self.q_ingress,
            self.q_egress,
            self.retx_bytes,
            self.tx_data_bytes,
            self.drops,
            self.offered_flows,
            self.all_completed
        )
    }

    /// Strict parse of [`RunOutput::to_json`] output. Any anomaly (torn
    /// journal line, schema drift) yields `None`, which makes the
    /// supervisor re-run the cell — always safe.
    pub fn from_json(s: &str) -> Option<RunOutput> {
        fn between<'a>(s: &'a str, start: &str, end: &str) -> Option<&'a str> {
            let i = s.find(start)? + start.len();
            let j = s[i..].find(end)? + i;
            Some(&s[i..j])
        }
        let fcts_raw = between(s, "\"fcts\":[", "],\"pfc\":[")?;
        let mut fcts = Vec::new();
        if !fcts_raw.is_empty() {
            for pair in fcts_raw.split("],[") {
                let pair = pair.trim_start_matches('[').trim_end_matches(']');
                let (a, b) = pair.split_once(',')?;
                fcts.push((a.parse().ok()?, b.parse().ok()?));
            }
        }
        let pfc: Vec<u64> = between(s, "\"pfc\":[", "],\"q\":[")?
            .split(',')
            .map(|v| v.parse().ok())
            .collect::<Option<_>>()?;
        let q: Vec<f64> = between(s, "\"q\":[", "],\"retx_bytes\":")?
            .split(',')
            .map(|v| v.parse().ok())
            .collect::<Option<_>>()?;
        if pfc.len() != 3 || q.len() != 3 {
            return None;
        }
        Some(RunOutput {
            fcts,
            pfc_core: pfc[0],
            pfc_ingress: pfc[1],
            pfc_egress: pfc[2],
            q_core: q[0],
            q_ingress: q[1],
            q_egress: q[2],
            retx_bytes: between(s, "\"retx_bytes\":", ",\"tx_data_bytes\":")?.parse().ok()?,
            tx_data_bytes: between(s, "\"tx_data_bytes\":", ",\"drops\":")?.parse().ok()?,
            drops: between(s, "\"drops\":", ",\"offered_flows\":")?.parse().ok()?,
            offered_flows: between(s, "\"offered_flows\":", ",\"all_completed\":")?
                .parse()
                .ok()?,
            all_completed: match between(s, "\"all_completed\":", "}")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
        })
    }
}

fn class_avg(trace: &Trace, ports: &[(NodeId, PortId)]) -> f64 {
    let vals: Vec<f64> = ports
        .iter()
        .filter_map(|&(n, p)| trace.queue_avg(n, p))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// The simulator config a fat-tree run uses for `regime` at `seed` —
/// shared by [`run_fat_tree_verdict`] and [`fct_cell_key`] so the journal
/// key hashes exactly the config the cell runs.
pub fn fat_tree_sim_config(regime: BufferRegime, seed: u64) -> SimConfig {
    let mut sim_cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    sim_cfg.buffer_mode = match regime {
        BufferRegime::Pfc => BufferMode::LosslessPfc,
        BufferRegime::Unlimited => {
            // Without PFC or drops, deep DCQCN queues would trip the
            // go-back-N timeout spuriously; a lossless fabric does not
            // rely on timeouts, so push the RTO out of the way to isolate
            // pure queueing effects (Fig. 18's subject).
            sim_cfg.rto = SimDuration::from_millis(200);
            BufferMode::Unlimited
        }
        BufferRegime::Lossy3x => BufferMode::LossyTailDrop {
            limit_bytes: 3 * sim_cfg.pfc.xoff_40g,
        },
    };
    sim_cfg
}

/// Run one fat-tree experiment instance, discarding the typed verdict
/// (kept for callers that only consume the measurements; the supervised
/// grid uses [`run_fat_tree_verdict`]).
pub fn run_fat_tree(
    scheme: Scheme,
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
    seed: u64,
) -> RunOutput {
    run_fat_tree_verdict(scheme, workload, load, cfg, regime, seed).0
}

/// Run one fat-tree experiment instance and return both the measurements
/// and the run's typed verdict.
pub fn run_fat_tree_verdict(
    scheme: Scheme,
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
    seed: u64,
) -> (RunOutput, RunVerdict) {
    let ft: FatTree = scenarios::fat_tree(cfg.hosts_per_edge, cfg.trunks);
    let sim_cfg = fat_tree_sim_config(regime, seed);
    // Fat-tree base RTT: 4 links × 1.5 µs each way + serialization ≈ 13 µs.
    let mut sim = sim_with(ft.topo.clone(), scheme, 13, sim_cfg);
    sim.trace.sample_period = Some(SimDuration::from_micros(200));
    // Queue averages cover the loaded window only, not the drain phase.
    sim.trace.avg_until = Some(SimTime::ZERO + cfg.window);
    for &(n, p) in ft
        .core_cp_ports
        .iter()
        .chain(&ft.ingress_cp_ports)
        .chain(&ft.egress_cp_ports)
    {
        sim.trace.watch_queue_avg(n, p);
    }

    // Workload: every host behind edges 0/1 sends to hosts behind edge 2.
    let wl = PoissonWorkload {
        dist: workload.dist(),
        load,
        link_bps: 40_000_000_000,
        duration_ns: cfg.window.as_nanos(),
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x9e37);
    let mut gen = Vec::new();
    wl.generate(
        &mut rng,
        ft.senders.len(),
        ft.receivers.len(),
        false,
        &mut gen,
    );
    let offered_flows = gen.len();
    for (i, g) in gen.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: ft.senders[g.src_idx],
            dst: ft.receivers[g.dst_idx],
            size: g.size,
            start: SimTime::from_nanos(g.start_ns),
            offered: None,
        });
    }
    let verdict = sim.run_until_flows_done(SimTime::ZERO + cfg.window + cfg.max_drain);
    let all_completed = verdict.is_complete();

    // Classify PFC events by the switch that generated the pause.
    let is_core = |n: NodeId| ft.cores.contains(&n);
    let is_egress_edge = |n: NodeId| n == ft.edges[2];
    let (mut pfc_core, mut pfc_ingress, mut pfc_egress) = (0u64, 0u64, 0u64);
    for e in &sim.trace.pfc_events {
        if is_core(e.node) {
            pfc_core += 1;
        } else if is_egress_edge(e.node) {
            pfc_egress += 1;
        } else {
            pfc_ingress += 1;
        }
    }
    let out = RunOutput {
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.size, r.fct().as_secs_f64()))
            .collect(),
        pfc_core,
        pfc_ingress,
        pfc_egress,
        q_core: class_avg(&sim.trace, &ft.core_cp_ports),
        q_ingress: class_avg(&sim.trace, &ft.ingress_cp_ports),
        q_egress: class_avg(&sim.trace, &ft.egress_cp_ports),
        retx_bytes: sim.trace.retx_bytes,
        tx_data_bytes: sim.trace.tx_data_bytes,
        drops: sim.trace.drops,
        offered_flows,
        all_completed,
    };
    (out, verdict)
}

/// FCT statistics for one flow-size bin, aggregated over repetitions.
#[derive(Debug, Clone, Copy)]
pub struct FctBinStat {
    /// Bin edge (bytes).
    pub bin: u64,
    /// Mean FCT (seconds) ± 95% CI over repetitions.
    pub avg: MeanCi,
    /// 90th-percentile FCT ± CI.
    pub p90: MeanCi,
    /// 99th-percentile FCT ± CI.
    pub p99: MeanCi,
    /// Total flows in the bin across repetitions.
    pub count: usize,
}

/// One scheme's FCT table plus the side observations reused by Figs. 17,
/// 18, 20 and Table 3.
#[derive(Debug)]
pub struct SchemeFcts {
    /// The scheme.
    pub scheme: Scheme,
    /// Per-bin statistics (bins from the workload's published axis).
    pub bins: Vec<FctBinStat>,
    /// Per-flow average rate = size/FCT, pooled across reps (bits/s).
    pub flow_rates: Vec<f64>,
    /// PFC counts per class, averaged over reps.
    pub pfc: [f64; 3],
    /// Average queue depth per class (core, ingress, egress; bytes).
    pub queues: [f64; 3],
    /// Retransmitted-bytes fraction of transmitted data bytes.
    pub retx_fraction: f64,
    /// Total drops, summed over reps.
    pub drops: u64,
    /// True if all reps drained completely.
    pub all_completed: bool,
}

impl SchemeFcts {
    /// Canonical JSON rendering: fixed field order, shortest-roundtrip
    /// float formatting. Two runs that computed bit-identical statistics
    /// produce byte-identical strings, which the determinism suite
    /// compares directly.
    pub fn to_json(&self) -> String {
        let bins: Vec<String> = self
            .bins
            .iter()
            .map(|b| {
                format!(
                    "{{\"bin\":{},\"avg\":{},\"avg_ci\":{},\"p90\":{},\"p90_ci\":{},\"p99\":{},\"p99_ci\":{},\"count\":{}}}",
                    b.bin, b.avg.mean, b.avg.ci95, b.p90.mean, b.p90.ci95,
                    b.p99.mean, b.p99.ci95, b.count
                )
            })
            .collect();
        let rates: Vec<String> = self.flow_rates.iter().map(|r| format!("{r}")).collect();
        format!(
            "{{\"scheme\":\"{}\",\"bins\":[{}],\"flow_rates\":[{}],\
             \"pfc\":[{},{},{}],\"queues\":[{},{},{}],\
             \"retx_fraction\":{},\"drops\":{},\"all_completed\":{}}}",
            self.scheme.name(),
            bins.join(","),
            rates.join(","),
            self.pfc[0],
            self.pfc[1],
            self.pfc[2],
            self.queues[0],
            self.queues[1],
            self.queues[2],
            self.retx_fraction,
            self.drops,
            self.all_completed
        )
    }
}

/// Seed for repetition `rep` — shared by the serial and parallel paths
/// so both run the exact same cells.
fn rep_seed(rep: usize) -> u64 {
    1000 + rep as u64
}

/// Fold per-repetition outputs (in repetition order) into one scheme row.
///
/// Extracted from [`scheme_fcts`] so the parallel runner can fan out
/// individual `(scheme, rep)` cells and aggregate afterwards with the
/// exact arithmetic — and accumulation order — of the serial loop,
/// keeping the two paths bit-identical.
pub fn aggregate_outputs(
    scheme: Scheme,
    workload: Workload,
    cfg: &FatTreeConfig,
    outputs: &[RunOutput],
) -> SchemeFcts {
    let refs: Vec<&RunOutput> = outputs.iter().collect();
    aggregate_outputs_ref(scheme, workload, cfg, &refs)
}

/// The by-reference core of [`aggregate_outputs`] — the supervised grid
/// aggregates the surviving subset of cells without cloning them.
fn aggregate_outputs_ref(
    scheme: Scheme,
    workload: Workload,
    cfg: &FatTreeConfig,
    outputs: &[&RunOutput],
) -> SchemeFcts {
    let edges = workload.dist().report_bins();
    let mut per_rep_avg: Vec<Vec<f64>> = vec![Vec::new(); edges.len()];
    let mut per_rep_p90: Vec<Vec<f64>> = vec![Vec::new(); edges.len()];
    let mut per_rep_p99: Vec<Vec<f64>> = vec![Vec::new(); edges.len()];
    let mut counts = vec![0usize; edges.len()];
    let mut flow_rates = Vec::new();
    let mut pfc = [0.0f64; 3];
    let mut queues = [0.0f64; 3];
    let (mut retx, mut tx, mut drops) = (0u64, 0u64, 0u64);
    let mut all_completed = true;
    for out in outputs {
        all_completed &= out.all_completed;
        let binned = bin_values(
            &edges,
            out.fcts.iter().map(|&(size, fct)| (size, fct)),
        );
        for (i, b) in binned.iter().enumerate() {
            counts[i] += b.len();
            if let Some(s) = rocc_stats::summarize(b) {
                per_rep_avg[i].push(s.mean);
            }
            if let Ok(p) = percentile(b, 0.90) {
                per_rep_p90[i].push(p);
            }
            if let Ok(p) = percentile(b, 0.99) {
                per_rep_p99[i].push(p);
            }
        }
        // Table 3 records flow-level rates "at sources"; size/FCT is a
        // faithful proxy only for flows that live through many update
        // intervals — short flows finish inside one rate plateau and their
        // size/FCT mostly measures serialization + base RTT, which would
        // swamp the allocation variance the table is about.
        flow_rates.extend(
            out.fcts
                .iter()
                .filter(|&&(size, fct)| fct > 0.0 && size >= 50_000)
                .map(|&(size, fct)| size as f64 * 8.0 / fct),
        );
        pfc[0] += out.pfc_core as f64 / cfg.reps as f64;
        pfc[1] += out.pfc_ingress as f64 / cfg.reps as f64;
        pfc[2] += out.pfc_egress as f64 / cfg.reps as f64;
        queues[0] += out.q_core / cfg.reps as f64;
        queues[1] += out.q_ingress / cfg.reps as f64;
        queues[2] += out.q_egress / cfg.reps as f64;
        retx += out.retx_bytes;
        tx += out.tx_data_bytes;
        drops += out.drops;
    }
    let bins = edges
        .iter()
        .enumerate()
        .map(|(i, &bin)| FctBinStat {
            bin,
            avg: mean_ci95(&per_rep_avg[i]).unwrap_or(MeanCi {
                mean: 0.0,
                ci95: 0.0,
                n: 0,
            }),
            p90: mean_ci95(&per_rep_p90[i]).unwrap_or(MeanCi {
                mean: 0.0,
                ci95: 0.0,
                n: 0,
            }),
            p99: mean_ci95(&per_rep_p99[i]).unwrap_or(MeanCi {
                mean: 0.0,
                ci95: 0.0,
                n: 0,
            }),
            count: counts[i],
        })
        .collect();
    SchemeFcts {
        scheme,
        bins,
        flow_rates,
        pfc,
        queues,
        retx_fraction: if tx == 0 { 0.0 } else { retx as f64 / tx as f64 },
        drops,
        all_completed,
    }
}

/// Run `scheme` for `reps` seeds (serially) and aggregate.
pub fn scheme_fcts(
    scheme: Scheme,
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
) -> SchemeFcts {
    let outputs: Vec<RunOutput> = (0..cfg.reps)
        .map(|rep| run_fat_tree(scheme, workload, load, cfg, regime, rep_seed(rep)))
        .collect();
    aggregate_outputs(scheme, workload, cfg, &outputs)
}

/// Journal key for one `(scheme, rep)` fat-tree cell: the seed-zeroed
/// simulator-config digest (the observatory's config-hash idiom) extended
/// with a digest of the experiment dimensions, plus a human-readable
/// suffix naming the cell.
pub fn fct_cell_key(
    scheme: Scheme,
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
    rep: usize,
) -> String {
    let sim_hash = digest(&format!("{:?}", fat_tree_sim_config(regime, 0)));
    let dims_hash = digest(&format!("{cfg:?}|load={load:?}"));
    format!(
        "fct/{}/{}/{}/rep{}/{}{}",
        scheme.name(),
        workload.name(),
        match regime {
            BufferRegime::Pfc => "pfc",
            BufferRegime::Unlimited => "unlimited",
            BufferRegime::Lossy3x => "lossy3x",
        },
        rep,
        sim_hash,
        dims_hash
    )
}

/// Figs. 14–16: the DCQCN / HPCC / RoCC FCT comparison on one workload at
/// one load level (the avg, p90 and p99 views come from the same runs).
///
/// Fans the `scheme × repetition` grid out across threads by default;
/// every cell is an independent simulation and results aggregate in grid
/// order, so the output is bit-identical to [`ExecMode::Serial`]
/// (pinned by `tests/determinism.rs`).
pub fn fct_comparison(
    workload: Workload,
    load: f64,
    scale: Scale,
    regime: BufferRegime,
) -> Vec<SchemeFcts> {
    fct_comparison_with(workload, load, scale, regime, ExecMode::Parallel)
}

/// [`fct_comparison`] with an explicit execution mode.
pub fn fct_comparison_with(
    workload: Workload,
    load: f64,
    scale: Scale,
    regime: BufferRegime,
    mode: ExecMode,
) -> Vec<SchemeFcts> {
    fct_grid(workload, load, &FatTreeConfig::for_scale(scale), regime, mode)
}

/// [`fct_comparison`] under an explicit [`Supervisor`]: the grid runs
/// with panic isolation and typed outcomes, failed cells degrade the
/// aggregates gracefully instead of aborting the sweep, and the report
/// carries the failure detail for the CLI's exit-code decision.
pub fn fct_comparison_supervised(
    workload: Workload,
    load: f64,
    scale: Scale,
    regime: BufferRegime,
    sup: &Supervisor,
) -> (Vec<SchemeFcts>, CampaignReport) {
    fct_grid_supervised(workload, load, &FatTreeConfig::for_scale(scale), regime, sup)
}

/// The full `scheme × repetition` grid at an explicit config — the
/// common core of the scale-based entry points and the determinism
/// suite (which wants a miniature config). Runs under a default
/// keep-going supervisor; when every cell succeeds (the overwhelmingly
/// common case) the output is bit-identical to the pre-supervisor
/// serial loop.
pub fn fct_grid(
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
    mode: ExecMode,
) -> Vec<SchemeFcts> {
    fct_grid_supervised(workload, load, cfg, regime, &Supervisor::new(mode)).0
}

/// [`fct_grid`] under an explicit [`Supervisor`]. Cells cut off by a
/// runtime budget guard or failing with a protocol verdict are excluded
/// from their scheme's aggregate (partial results) and recorded in the
/// campaign report; a scheme whose cells all failed still yields a row,
/// with empty statistics and `all_completed == false`.
pub fn fct_grid_supervised(
    workload: Workload,
    load: f64,
    cfg: &FatTreeConfig,
    regime: BufferRegime,
    sup: &Supervisor,
) -> (Vec<SchemeFcts>, CampaignReport) {
    let schemes = Scheme::large_scale_set();
    // Scheme-major grid of independent cells; cell (si, rep) is one run.
    let cells: Vec<(String, (usize, usize))> = (0..schemes.len())
        .flat_map(|si| {
            (0..cfg.reps).map(move |rep| (si, rep))
        })
        .map(|(si, rep)| {
            (
                fct_cell_key(schemes[si], workload, load, cfg, regime, rep),
                (si, rep),
            )
        })
        .collect();
    let codec = FnCodec(RunOutput::to_json, RunOutput::from_json);
    let campaign = sup.run(cells, &codec, |&(si, rep)| {
        let (out, verdict) = run_fat_tree_verdict(
            schemes[si],
            workload,
            load,
            cfg,
            regime,
            rep_seed(rep),
        );
        match verdict.err() {
            // Budget guards mean the cell itself was runaway: no usable
            // measurement. Protocol-level verdicts (e.g. a deadline with
            // flows outstanding) still measured something — the paper's
            // FCT figures *want* those partial runs, flagged through
            // `all_completed` — so only budget failures fail the cell.
            Some(e) if e.is_budget() => Err(e.clone()),
            _ => Ok(out),
        }
    });
    let report = campaign.report();
    let results = campaign.into_results();
    let rows = schemes
        .iter()
        .zip(results.chunks(cfg.reps))
        .map(|(&scheme, outs)| {
            let ok: Vec<&RunOutput> = outs.iter().flatten().collect();
            let mut row = aggregate_outputs_ref(scheme, workload, cfg, &ok);
            // A dropped cell means the sweep is incomplete even if every
            // surviving rep drained cleanly.
            row.all_completed &= ok.len() == outs.len();
            row
        })
        .collect();
    (rows, report)
}

/// Table 3 row: flow-level rate allocation.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// The scheme.
    pub scheme: Scheme,
    /// Average per-flow rate (bits/s).
    pub mean_bps: f64,
    /// Standard deviation (bits/s).
    pub std_bps: f64,
}

/// Table 3 from an existing FCT comparison (FB_Hadoop at 70%).
pub fn table3(results: &[SchemeFcts]) -> Vec<Table3Row> {
    results
        .iter()
        .map(|r| {
            let s = rocc_stats::summarize(&r.flow_rates).expect("no flows");
            Table3Row {
                scheme: r.scheme,
                mean_bps: s.mean,
                std_bps: s.std_dev,
            }
        })
        .collect()
}

/// Fig. 18 / Fig. 20: per-bin fold increase of average FCT versus a PFC
/// baseline from the same workload/load/scale.
#[derive(Debug)]
pub struct FoldRow {
    /// The scheme.
    pub scheme: Scheme,
    /// (bin, avg FCT seconds, fold increase vs baseline).
    pub bins: Vec<(u64, f64, f64)>,
    /// Retransmission share of transmitted bytes (Fig. 20).
    pub retx_fraction: f64,
    /// Total drops.
    pub drops: u64,
}

/// Compute fold increases of `alt` (unlimited/lossy run) over `baseline`
/// (PFC run), scheme by scheme.
pub fn fold_increase(baseline: &[SchemeFcts], alt: &[SchemeFcts]) -> Vec<FoldRow> {
    alt.iter()
        .map(|a| {
            let b = baseline
                .iter()
                .find(|b| b.scheme == a.scheme)
                .expect("baseline missing scheme");
            let bins = a
                .bins
                .iter()
                .zip(&b.bins)
                .map(|(ab, bb)| {
                    let fold = if bb.avg.mean > 0.0 {
                        ab.avg.mean / bb.avg.mean
                    } else {
                        0.0
                    };
                    (ab.bin, ab.avg.mean, fold)
                })
                .collect();
            FoldRow {
                scheme: a.scheme,
                bins,
                retx_fraction: a.retx_fraction,
                drops: a.drops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke-scale config so the unit test stays fast.
    fn tiny() -> FatTreeConfig {
        FatTreeConfig {
            hosts_per_edge: 3,
            trunks: 1,
            window: SimDuration::from_millis(2),
            max_drain: SimDuration::from_millis(400),
            reps: 1,
        }
    }

    #[test]
    fn rocc_fat_tree_run_completes_and_measures() {
        let out = run_fat_tree(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.5,
            &tiny(),
            BufferRegime::Pfc,
            7,
        );
        assert!(out.offered_flows > 50, "workload too thin: {}", out.offered_flows);
        assert!(out.all_completed, "flows stuck");
        assert_eq!(out.fcts.len(), out.offered_flows);
        assert_eq!(out.drops, 0);
        assert!(out.fcts.iter().all(|&(_, fct)| fct > 0.0));
    }

    #[test]
    fn lossy_regime_reports_drops_or_clean_run() {
        let out = run_fat_tree(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.5,
            &tiny(),
            BufferRegime::Lossy3x,
            7,
        );
        // RoCC keeps queues near Qref, far below 1.5 MB: expect no drops.
        assert!(out.all_completed);
        assert_eq!(out.drops, 0);
    }

    #[test]
    fn run_output_json_roundtrip_is_exact() {
        let out = run_fat_tree(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.5,
            &tiny(),
            BufferRegime::Pfc,
            7,
        );
        assert!(!out.fcts.is_empty());
        let json = out.to_json();
        let back = RunOutput::from_json(&json).expect("roundtrip parse");
        assert_eq!(back.to_json(), json, "re-encode must be byte-identical");
        assert_eq!(back.fcts, out.fcts);
        // A torn journal value must be rejected, not half-parsed.
        assert!(RunOutput::from_json(&json[..json.len() - 3]).is_none());
        assert!(RunOutput::from_json("{}").is_none());
    }

    #[test]
    fn cell_keys_name_cells_uniquely() {
        let cfg = tiny();
        let base = fct_cell_key(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.5,
            &cfg,
            BufferRegime::Pfc,
            0,
        );
        for (other, why) in [
            (
                fct_cell_key(Scheme::Rocc, Workload::FbHadoop, 0.5, &cfg, BufferRegime::Pfc, 1),
                "rep",
            ),
            (
                fct_cell_key(Scheme::Dcqcn, Workload::FbHadoop, 0.5, &cfg, BufferRegime::Pfc, 0),
                "scheme",
            ),
            (
                fct_cell_key(Scheme::Rocc, Workload::WebSearch, 0.5, &cfg, BufferRegime::Pfc, 0),
                "workload",
            ),
            (
                fct_cell_key(Scheme::Rocc, Workload::FbHadoop, 0.7, &cfg, BufferRegime::Pfc, 0),
                "load",
            ),
            (
                fct_cell_key(Scheme::Rocc, Workload::FbHadoop, 0.5, &cfg, BufferRegime::Lossy3x, 0),
                "regime",
            ),
        ] {
            assert_ne!(base, other, "key must separate cells by {why}");
        }
        // Same cell → same key (the resume identity).
        assert_eq!(
            base,
            fct_cell_key(Scheme::Rocc, Workload::FbHadoop, 0.5, &cfg, BufferRegime::Pfc, 0)
        );
    }

    #[test]
    fn scheme_fcts_aggregates_bins() {
        let r = scheme_fcts(
            Scheme::Rocc,
            Workload::FbHadoop,
            0.5,
            &tiny(),
            BufferRegime::Pfc,
        );
        assert_eq!(r.bins.len(), 10);
        let total: usize = r.bins.iter().map(|b| b.count).sum();
        assert!(total > 50);
        assert!(r.all_completed);
        // Small-flow bins must show smaller average FCT than the 100K bin.
        let first = r.bins.first().unwrap();
        let last = r.bins.last().unwrap();
        if first.count > 0 && last.count > 0 {
            assert!(first.avg.mean < last.avg.mean);
        }
    }
}
