//! Incast: the datacenter pattern that motivates RDMA congestion control.
//!
//! 32 workers answer a partition/aggregate query at once, blasting
//! responses at a single aggregator behind one 40 GbE link — the classic
//! burst that overruns switch buffers and triggers PFC storms. This
//! example runs the same burst twice, with PFC alone and with RoCC on
//! top, and compares buffer peaks, PFC activity, and completion times.
//!
//! ```text
//! cargo run --release --example incast_burst
//! ```

use rocc::core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc::sim::cc::{NullHostCcFactory, NullSwitchCcFactory};
use rocc::sim::prelude::*;

const WORKERS: usize = 32;
const RESPONSE_BYTES: u64 = 2_000_000; // 2 MB per worker

struct Outcome {
    peak_queue: u64,
    mean_queue: f64,
    pfc_frames: usize,
    last_fct_ms: f64,
    mean_fct_ms: f64,
}

fn run(with_rocc: bool) -> Outcome {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("tor", NodeRole::Switch);
    let agg = b.add_host("aggregator");
    let (bottleneck, _) = b.connect(sw, agg, BitRate::from_gbps(40), SimDuration::from_micros(1));
    let mut workers = Vec::new();
    for i in 0..WORKERS {
        let h = b.add_host(format!("worker{i}"));
        b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
        workers.push(h);
    }
    let (host_cc, switch_cc): (
        Box<dyn rocc::sim::cc::HostCcFactory>,
        Box<dyn rocc::sim::cc::SwitchCcFactory>,
    ) = if with_rocc {
        (
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        )
    } else {
        (Box::new(NullHostCcFactory), Box::new(NullSwitchCcFactory))
    };
    let mut sim = Sim::new(b.build(), SimConfig::default(), host_cc, switch_cc);
    sim.trace.sample_period = Some(SimDuration::from_micros(50));
    sim.trace.watch_queue(sw, bottleneck);

    // All workers answer within a 10 µs jitter window.
    for (i, &w) in workers.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: w,
            dst: agg,
            size: RESPONSE_BYTES,
            start: SimTime::from_nanos(i as u64 * 300),
            offered: None,
        });
    }
    sim.run_until_flows_done(SimTime::from_millis(100)).assert_complete();

    let fcts: Vec<f64> = sim.trace.fcts.iter().map(|r| r.fct().as_secs_f64() * 1e3).collect();
    let q: Vec<f64> = sim.trace.queue_series[0].iter().map(|s| s.v).collect();
    Outcome {
        peak_queue: sim.trace.queue_peak[0],
        mean_queue: q.iter().sum::<f64>() / q.len().max(1) as f64,
        pfc_frames: sim.trace.pfc_events.len(),
        last_fct_ms: fcts.iter().cloned().fold(0.0, f64::max),
        mean_fct_ms: fcts.iter().sum::<f64>() / fcts.len() as f64,
    }
}

fn main() {
    println!("{WORKERS}-to-1 incast of {} kB responses over 40 GbE\n", RESPONSE_BYTES / 1000);
    let pfc_only = run(false);
    let rocc = run(true);
    println!("{:>22} {:>14} {:>14}", "", "PFC only", "RoCC");
    println!(
        "{:>22} {:>12.0}KB {:>12.0}KB",
        "peak switch buffer",
        pfc_only.peak_queue as f64 / 1e3,
        rocc.peak_queue as f64 / 1e3
    );
    println!(
        "{:>22} {:>12.0}KB {:>12.0}KB",
        "mean switch buffer",
        pfc_only.mean_queue / 1e3,
        rocc.mean_queue / 1e3
    );
    println!(
        "{:>22} {:>14} {:>14}",
        "PFC pause frames", pfc_only.pfc_frames, rocc.pfc_frames
    );
    println!(
        "{:>22} {:>12.2}ms {:>12.2}ms",
        "mean FCT", pfc_only.mean_fct_ms, rocc.mean_fct_ms
    );
    println!(
        "{:>22} {:>12.2}ms {:>12.2}ms",
        "query completion", pfc_only.last_fct_ms, rocc.last_fct_ms
    );
    println!("\nRoCC absorbs the burst at the congestion point: the fair rate");
    println!("collapses within one update interval (multiplicative decrease),");
    println!("the queue drains to the reference depth, and the incast finishes");
    println!("without relying on back-pressure.");
}
