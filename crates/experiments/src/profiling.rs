//! `repro profile`: the engine performance observatory over a scenario.
//!
//! Runs one scenario with the phase profiler live and produces two
//! artifacts:
//!
//! 1. `profile_<scenario>.json` — the `rocc-perf-profile/v1` document:
//!    per-phase wall-time shares and exact event counts, scheduler
//!    introspection (push/pop totals, heap-depth time series,
//!    same-timestamp burst histogram, event-type dispatch mix), and
//!    slab/fastmap load;
//! 2. `profile_<scenario>_perfetto.json` — the Chrome-trace export of the
//!    same run, which with the profiler on additionally carries the
//!    engine-internals counter tracks (heap depth, live slab packets).
//!
//! The scenario deliberately runs with full telemetry and the observatory
//! sampler enabled: the point of phase attribution is to see what the
//! instrumentation itself costs next to switch/host/CP work, so the
//! profiled configuration is the *most* observed one, not the leanest.

use crate::micro;
use crate::scenarios;
use crate::schemes::Scheme;
use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocc_sim::prelude::*;

/// Scenario names accepted by [`profile`].
pub const SCENARIOS: [&str; 1] = ["incast"];

/// Everything one profiled run produced.
#[derive(Debug)]
pub struct ProfileRun {
    /// Scenario name (an entry of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Simulation seed.
    pub seed: u64,
    /// Run scale.
    pub scale: Scale,
    /// Flows offered.
    pub flows: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Events processed in the profiled window.
    pub events: u64,
    /// Wall-clock seconds of the profiled window.
    pub wall_seconds: f64,
    /// Per-phase `(name, wall-time share, exact event count)` rows.
    pub shares: Vec<(&'static str, f64, u64)>,
    /// The `rocc-perf-profile/v1` document.
    pub profile_json: String,
    /// Chrome-trace export with engine-internals counter tracks.
    pub perfetto_json: String,
    /// The run's typed verdict.
    pub verdict: RunVerdict,
}

impl ProfileRun {
    /// Sum of the per-phase wall-time shares. By construction the sampled
    /// shares are normalized against the total measured wall, so this is
    /// 1.0 up to floating-point noise — the acceptance gate checks it
    /// stays within 5%.
    pub fn share_sum(&self) -> f64 {
        self.shares.iter().map(|(_, s, _)| s).sum()
    }

    /// Events per wall-clock second of the profiled window.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Render the per-phase breakdown as an aligned text table, largest
    /// share first (the EXPERIMENTS.md "profiling" table is this output).
    pub fn render_table(&self) -> String {
        let mut rows = self.shares.clone();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut out = format!(
            "{:<16} {:>8} {:>12} {:>12}\n",
            "phase", "share", "wall_ms", "count"
        );
        for (name, share, count) in rows {
            out.push_str(&format!(
                "{name:<16} {:>7.2}% {:>12.3} {count:>12}\n",
                100.0 * share,
                share * self.wall_seconds * 1e3,
            ));
        }
        out
    }

    /// Write the two artifacts into `dir` (created if missing). Returns
    /// the paths written.
    pub fn write_artifacts(&self, dir: &str) -> Result<Vec<String>, ArtifactError> {
        let paths = [
            (
                format!("{dir}/profile_{}.json", self.scenario),
                &self.profile_json,
            ),
            (
                format!("{dir}/profile_{}_perfetto.json", self.scenario),
                &self.perfetto_json,
            ),
        ];
        let mut written = Vec::new();
        for (path, contents) in &paths {
            write_artifact(path, contents)?;
            written.push(path.clone());
        }
        Ok(written)
    }
}

/// Run one named scenario under the phase profiler. `None` for an unknown
/// scenario name.
pub fn profile(scenario: &str, scale: Scale, seed: u64) -> Option<ProfileRun> {
    match scenario {
        "incast" => Some(incast(scale, seed)),
        _ => None,
    }
}

/// N-to-1 RoCC incast on the 40G dumbbell, profiled: same workload and
/// jittered starts as the observatory's incast, with full telemetry, the
/// observatory sampler, *and* the phase profiler live.
pub fn incast(scale: Scale, seed: u64) -> ProfileRun {
    let (n, size, horizon) = match scale {
        Scale::Quick => (8usize, 2_000_000u64, SimTime::from_millis(200)),
        Scale::Paper => (16, 10_000_000, SimTime::from_millis(1000)),
    };
    let d = scenarios::dumbbell(n, BitRate::from_gbps(40));
    let cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = micro::sim_with(d.topo, Scheme::Rocc, 7, cfg);
    sim.enable_profiler();
    sim.trace.telemetry.collect(EventMask::ALL);
    sim.trace.observatory.enable();
    sim.trace.sample_period = Some(SimDuration::from_micros(10));
    sim.trace.watch_queue(d.switch, d.bottleneck_port);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for (i, &s) in d.senders.iter().enumerate() {
        sim.trace.watch_flow_rate(FlowId(i as u64));
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst: d.receiver,
            size,
            start: SimTime::from_nanos(rng.gen_range(0..10_000)),
            offered: None,
        });
    }
    let verdict = sim.run_until_flows_done(horizon);
    let p = sim.profile();
    ProfileRun {
        scenario: "incast",
        seed,
        scale,
        flows: n,
        completed: sim.trace.fcts.len(),
        events: p.events_processed,
        wall_seconds: p.wall_seconds,
        shares: sim.kernel.prof.phase_shares(sim.profiled_pushes()),
        profile_json: sim.perf_profile_json(),
        perfetto_json: export_chrome_trace(&sim),
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_incast_produces_consistent_artifacts() {
        let run = incast(Scale::Quick, 7);
        assert!(run.verdict.is_complete());
        assert_eq!(run.completed, run.flows);
        assert!(run.events > 0);
        let sum = run.share_sum();
        assert!((sum - 1.0).abs() < 0.05, "share sum {sum}");
        assert!(run.profile_json.contains("\"schema\":\"rocc-perf-profile/v1\""));
        assert!(run.perfetto_json.contains("event heap depth"));
        let table = run.render_table();
        assert!(table.contains("switch_forward"));
        assert!(table.contains("host_compute"));
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(profile("warp-drive", Scale::Quick, 1).is_none());
    }
}
