//! # RoCC — Robust Congestion Control for RDMA
//!
//! A complete, from-scratch Rust reproduction of *RoCC: Robust Congestion
//! Control for RDMA* (Taheri, Menikkumbura, Vanini, Fahmy, Eugster,
//! Edsall; CoNEXT 2020): the switch-driven congestion-control scheme, the
//! packet-level datacenter simulator it is evaluated on, every baseline it
//! is compared against, the control-theoretic stability analysis, and the
//! experiment harness regenerating every table and figure in the paper.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`rocc-core`) — RoCC itself: the congestion-point fair-rate
//!   calculator (PI + multiplicative decrease + six-level gain
//!   auto-tuning, Alg. 1), the reaction-point rate limiter (Alg. 2), flow
//!   tables, and the ICMP type-253 CNP wire format.
//! * [`sim`] (`rocc-sim`) — a deterministic discrete-event network
//!   simulator: switches with PFC (802.1Qbb) and priority queues, ECMP
//!   routing, hosts with per-flow rate limiters and go-back-N transport.
//! * [`baselines`] (`rocc-baselines`) — DCQCN, DCQCN+PI, QCN, TIMELY, and
//!   HPCC on the same pluggable traits.
//! * [`control`] (`rocc-control`) — the §5 Bode / phase-margin analysis.
//! * [`workloads`] (`rocc-workloads`) — WebSearch and FB_Hadoop flow-size
//!   distributions with Poisson arrivals at a target load.
//! * [`stats`] (`rocc-stats`) — percentiles, confidence intervals,
//!   flow-size binning, Jain fairness.
//! * [`experiments`] (`rocc-experiments`) — one function per paper
//!   artifact plus the `repro` CLI.
//!
//! ## Quick start
//!
//! ```
//! use rocc::core::{RoccHostCcFactory, RoccSwitchCcFactory};
//! use rocc::sim::prelude::*;
//!
//! // Two senders share one 40G bottleneck under RoCC.
//! let mut b = TopologyBuilder::new();
//! let sw = b.add_switch("sw", NodeRole::Switch);
//! let dst = b.add_host("dst");
//! b.connect(sw, dst, BitRate::from_gbps(40), SimDuration::from_micros(1));
//! let mut senders = vec![];
//! for i in 0..2 {
//!     let h = b.add_host(format!("h{i}"));
//!     b.connect(h, sw, BitRate::from_gbps(40), SimDuration::from_micros(1));
//!     senders.push(h);
//! }
//! let mut sim = Sim::new(
//!     b.build(),
//!     SimConfig::default(),
//!     Box::new(RoccHostCcFactory::new()),
//!     Box::new(RoccSwitchCcFactory::new()),
//! );
//! for (i, &src) in senders.iter().enumerate() {
//!     sim.add_flow(FlowSpec {
//!         id: FlowId(i as u64),
//!         src,
//!         dst,
//!         size: 5_000_000,
//!         start: SimTime::ZERO,
//!         offered: None,
//!     });
//! }
//! sim.run_until_flows_done(SimTime::from_millis(50)).assert_complete();
//! assert_eq!(sim.trace.fcts.len(), 2);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction inventory.

#![warn(missing_docs)]

pub use rocc_baselines as baselines;
pub use rocc_control as control;
pub use rocc_core as core;
pub use rocc_experiments as experiments;
pub use rocc_sim as sim;
pub use rocc_stats as stats;
pub use rocc_workloads as workloads;
