//! The telemetry layer has no observer effect: a run with every event
//! class collected, the metrics registry on, and a live subscriber
//! attached is bit-identical — same FCTs, drops, fault counts, event
//! count, control traffic — to the same seed with telemetry fully off.
//!
//! This is the structural guarantee that makes telemetry safe to leave
//! wired into the hot paths: it never touches the run RNG, the event
//! queue, or any CC state, only observes.

use rocc_core::{RoccHostCcFactory, RoccSwitchCcFactory};
use rocc_sim::prelude::*;
use rocc_sim::telemetry::EventSubscriber;

fn dumbbell(n: usize, gbps: u64) -> (Topology, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch("sw", NodeRole::Switch);
    let dst = b.add_host("dst");
    b.connect(sw, dst, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
    let mut srcs = Vec::new();
    for i in 0..n {
        let h = b.add_host(format!("s{i}"));
        b.connect(h, sw, BitRate::from_gbps(gbps), SimDuration::from_micros(1));
        srcs.push(h);
    }
    (b.build(), srcs, dst)
}

/// Everything observable a run produces, for bit-for-bit comparison.
#[derive(Debug, PartialEq)]
struct RunSummary {
    events: u64,
    fcts: Vec<(FlowId, u64)>,
    drops: u64,
    unroutable: u64,
    retx: u64,
    ctrl_emitted: u64,
    faults: FaultCounters,
}

fn summarize(sim: &Sim) -> RunSummary {
    RunSummary {
        events: sim.events_processed(),
        fcts: sim
            .trace
            .fcts
            .iter()
            .map(|r| (r.flow, r.end.as_nanos()))
            .collect(),
        drops: sim.trace.drops,
        unroutable: sim.trace.unroutable_drops,
        retx: sim.trace.retx_bytes,
        ctrl_emitted: sim.trace.ctrl_emitted,
        faults: sim.trace.faults.clone(),
    }
}

/// A live consumer whose only job is to prove subscribers run inline
/// without perturbing anything.
struct CountingSubscriber {
    seen: std::rc::Rc<std::cell::Cell<u64>>,
}

impl EventSubscriber for CountingSubscriber {
    fn on_event(&mut self, _ev: &SimEvent) {
        self.seen.set(self.seen.get() + 1);
    }
}

fn faulted_incast(seed: u64, telemetry: bool) -> (RunSummary, u64) {
    let (topo, srcs, dst) = dumbbell(6, 40);
    let cfg = SimConfig {
        seed,
        fault_plan: FaultPlan::default()
            .with_loss(FaultTarget::Data, 0.004)
            .with_loss(FaultTarget::Cnp, 0.01)
            .with_flap(
                LinkId(3),
                SimTime::from_micros(400),
                SimTime::from_micros(900),
            ),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo,
        cfg,
        Box::new(RoccHostCcFactory::new()),
        Box::new(RoccSwitchCcFactory::new()),
    );
    // Sampling is configured identically in both runs (sampling schedules
    // kernel events); only the telemetry switches differ.
    sim.trace.sample_period = Some(SimDuration::from_micros(10));
    sim.trace.watch_queue(NodeId(0), PortId(0));
    let seen = std::rc::Rc::new(std::cell::Cell::new(0));
    if telemetry {
        sim.trace.telemetry.collect(EventMask::ALL);
        sim.trace.telemetry.enable_metrics();
        sim.trace
            .telemetry
            .subscribe(Box::new(CountingSubscriber { seen: seen.clone() }));
    }
    for (i, &s) in srcs.iter().enumerate() {
        sim.add_flow(FlowSpec {
            id: FlowId(i as u64),
            src: s,
            dst,
            size: 1_000_000,
            start: SimTime::ZERO,
            offered: None,
        });
    }
    let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
    assert!(done, "faulted incast must complete within the horizon");
    if telemetry {
        // The instrumented run really observed the run from all angles.
        let t = &sim.trace.telemetry;
        assert!(!t.events.is_empty(), "no events collected");
        assert_eq!(seen.get(), t.events.len() as u64, "subscriber saw all");
        assert!(t.counter_total("cnp.emit") > 0);
        assert!(t.fct_hist.count() == 6, "one FCT sample per flow");
        assert!(t.queue_hist.count() > 0, "queue depth sampled");
    }
    (summarize(&sim), seen.get())
}

/// The core invariant: telemetry-on and telemetry-off runs of the same
/// seed are indistinguishable in every simulation-visible output.
#[test]
fn telemetry_is_invisible_to_the_simulation() {
    for seed in [1u64, 7, 42, 1234] {
        let (plain, _) = faulted_incast(seed, false);
        let (observed, seen) = faulted_incast(seed, true);
        assert!(seen > 0, "instrumented run produced no events");
        assert_eq!(
            plain, observed,
            "telemetry perturbed the run at seed {seed}"
        );
    }
}

/// The sanitizer obeys the same discipline as telemetry: audits are pure
/// reads between events, so a sanitizer-on run of a clean simulation is
/// bit-identical to the same seed with the sanitizer off, and its verdict
/// is `Completed`. (Runs that trip an invariant or deadlock *are* allowed
/// to diverge — aborting early is the sanitizer's whole point.)
#[test]
fn sanitizer_is_invisible_to_clean_runs() {
    let run = |seed: u64, sanitize: bool| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_duplication(FaultTarget::Data, 0.01)
                .with_reorder(FaultTarget::All, 0.01, SimDuration::from_micros(5)),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        if sanitize {
            // A short period maximizes the chance of catching any
            // state-perturbing audit.
            sim.enable_sanitizer_with_period(SimDuration::from_micros(5));
        }
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let verdict = sim.run_until_flows_done(SimTime::from_millis(100));
        verdict.assert_complete();
        if sanitize {
            let report = sim.sanitizer().report();
            assert!(report.audits > 0, "sanitizer never audited");
            assert!(report.violations.is_empty(), "{report:?}");
        }
        summarize(&sim)
    };
    for seed in [1u64, 7, 42, 1234] {
        let plain = run(seed, false);
        let audited = run(seed, true);
        assert_eq!(
            plain, audited,
            "the sanitizer perturbed the run at seed {seed}"
        );
    }
}

/// The observatory sampler obeys the same discipline: a faulted run with
/// the observatory collecting queue/CP/flow/PFC time series is
/// bit-identical to the same seed with it off. Sampling is configured
/// identically in both runs (the sample tick schedules kernel events);
/// only the observatory enable differs — telemetry stays off in both, so
/// this also proves the observatory works through the trace-level gate on
/// its own.
#[test]
fn observatory_is_invisible_to_the_simulation() {
    let run = |seed: u64, observe: bool| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_loss(FaultTarget::Cnp, 0.01)
                .with_flap(
                    LinkId(3),
                    SimTime::from_micros(400),
                    SimTime::from_micros(900),
                ),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.sample_period = Some(SimDuration::from_micros(10));
        sim.trace.watch_queue(NodeId(0), PortId(0));
        for i in 0..srcs.len() {
            sim.trace.watch_flow_rate(FlowId(i as u64));
        }
        if observe {
            sim.trace.observatory.enable();
        }
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
        assert!(done, "faulted incast must complete within the horizon");
        if observe {
            let o = &sim.trace.observatory;
            assert!(!o.rows().is_empty(), "observatory collected nothing");
            let jsonl = o.to_jsonl();
            assert!(jsonl.contains("\"type\":\"queue\""), "no queue rows");
            assert!(jsonl.contains("\"type\":\"flow\""), "no flow rows");
            assert!(jsonl.contains("\"type\":\"cp\""), "no CP rows");
            assert!(jsonl.contains("\"type\":\"pfc\""), "no PFC rows");
            (summarize(&sim), jsonl)
        } else {
            assert!(sim.trace.observatory.rows().is_empty());
            (summarize(&sim), String::new())
        }
    };
    for seed in [1u64, 7, 42, 1234] {
        let (plain, _) = run(seed, false);
        let (observed, jsonl_a) = run(seed, true);
        assert_eq!(
            plain, observed,
            "the observatory perturbed the run at seed {seed}"
        );
        // And the time series itself is deterministic.
        let (_, jsonl_b) = run(seed, true);
        assert_eq!(jsonl_a, jsonl_b, "observatory output not deterministic");
    }
}

/// The phase profiler obeys the same discipline: a faulted run with
/// sampled scoped timing, scheduler introspection, and the dispatch-mix
/// counters all live is bit-identical to the same seed with the profiler
/// off. The profiler only reads the host clock and bumps counters — it
/// never touches the RNG, the event queue, or CC state — so the schedule
/// cannot shift. Pinned across the three faulted golden seeds.
#[test]
fn profiler_is_invisible_to_the_simulation() {
    let run = |seed: u64, profile: bool| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_loss(FaultTarget::Cnp, 0.01)
                .with_flap(
                    LinkId(3),
                    SimTime::from_micros(400),
                    SimTime::from_micros(900),
                ),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.sample_period = Some(SimDuration::from_micros(10));
        sim.trace.watch_queue(NodeId(0), PortId(0));
        if profile {
            sim.enable_profiler();
        }
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
        assert!(done, "faulted incast must complete within the horizon");
        // The deterministic slice of the profiler's output: everything
        // except wall-clock timings (counts, scheduler stats, dispatch mix,
        // burst histogram, heap-depth series are pure functions of the
        // schedule).
        let introspection = if profile {
            let pushes = sim.profiled_pushes();
            let p = &sim.kernel.prof;
            assert_eq!(p.pops(), sim.events_processed(), "every pop dispatched");
            assert!(pushes > 0, "no pushes counted");
            assert!(p.timed_events() > 0, "sampling never triggered");
            assert!(!p.heap_series().is_empty(), "no heap-depth series");
            assert!(p.burst_histogram().count() > 0, "no burst samples");
            format!(
                "{:?}|{:?}|{}|{}|{:?}",
                p.dispatch_mix(),
                p.heap_series(),
                pushes,
                p.pops(),
                p.burst_histogram().to_json("events")
            )
        } else {
            assert_eq!(sim.kernel.prof.pops(), 0, "profiler ran while disabled");
            String::new()
        };
        (summarize(&sim), introspection)
    };
    for seed in [1u64, 7, 42] {
        let (plain, _) = run(seed, false);
        let (profiled, intro_a) = run(seed, true);
        assert_eq!(
            plain, profiled,
            "the phase profiler perturbed the run at seed {seed}"
        );
        // And the schedule-derived introspection is itself deterministic.
        let (_, intro_b) = run(seed, true);
        assert_eq!(intro_a, intro_b, "profiler introspection not deterministic");
    }
}

/// Auto-checkpointing obeys the same discipline: a faulted run that
/// serializes a full engine snapshot every few thousand events is
/// bit-identical to the same seed with checkpointing off. `snapshot()`
/// is a pure read of engine state — it never touches the RNG, the event
/// queue, or CC state — so periodically journaling one cannot shift the
/// schedule. This pins the "disabled costs one branch, enabled costs
/// only wall time" contract of sub-cell crash recovery.
#[test]
fn checkpointing_is_invisible_to_the_simulation() {
    let run = |seed: u64, checkpoint: bool| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_loss(FaultTarget::Cnp, 0.01)
                .with_flap(
                    LinkId(3),
                    SimTime::from_micros(400),
                    SimTime::from_micros(900),
                ),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.sample_period = Some(SimDuration::from_micros(10));
        sim.trace.watch_queue(NodeId(0), PortId(0));
        let saves = std::rc::Rc::new(std::cell::Cell::new(0u64));
        if checkpoint {
            let counter = saves.clone();
            sim.enable_auto_checkpoint(
                5_000,
                Box::new(move |_events, bytes| {
                    assert!(!bytes.is_empty());
                    counter.set(counter.get() + 1);
                }),
            );
        }
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
        assert!(done, "faulted incast must complete within the horizon");
        if checkpoint {
            assert!(saves.get() > 0, "no checkpoints taken");
        }
        summarize(&sim)
    };
    for seed in [1u64, 7, 42] {
        let plain = run(seed, false);
        let journaled = run(seed, true);
        assert_eq!(
            plain, journaled,
            "auto-checkpointing perturbed the run at seed {seed}"
        );
    }
}

/// The strided digest ledger obeys the same discipline: a faulted run
/// that digests every subsystem's state every few thousand events is
/// bit-identical to the same seed with recording off. Digesting reuses
/// the snapshot serializers — pure reads between events — so the
/// divergence observatory can stay wired into the run loop behind one
/// branch. Pinned across the three faulted golden seeds, per the
/// observatory's acceptance bar (DESIGN.md §3k).
#[test]
fn digest_ledger_recording_is_invisible_to_the_simulation() {
    let run = |seed: u64, record: bool| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_loss(FaultTarget::Cnp, 0.01)
                .with_flap(
                    LinkId(3),
                    SimTime::from_micros(400),
                    SimTime::from_micros(900),
                ),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.sample_period = Some(SimDuration::from_micros(10));
        sim.trace.watch_queue(NodeId(0), PortId(0));
        if record {
            sim.enable_digest_ledger(2_048);
        }
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
        assert!(done, "faulted incast must complete within the horizon");
        let jsonl = if record {
            let ledger = sim.take_digest_ledger().expect("ledger was enabled");
            assert!(!ledger.entries().is_empty(), "ledger recorded nothing");
            ledger.to_jsonl()
        } else {
            assert!(sim.digest_ledger().is_none());
            String::new()
        };
        (summarize(&sim), jsonl)
    };
    for seed in [1u64, 7, 42] {
        let (plain, _) = run(seed, false);
        let (recorded, jsonl_a) = run(seed, true);
        assert_eq!(
            plain, recorded,
            "digest-ledger recording perturbed the run at seed {seed}"
        );
        // And the ledger itself is deterministic.
        let (_, jsonl_b) = run(seed, true);
        assert_eq!(jsonl_a, jsonl_b, "digest ledger not deterministic");
    }
}

/// Taking a one-off snapshot mid-run is equally invisible: pausing at an
/// arbitrary event, serializing the full engine state, and continuing
/// produces the identical run to never pausing at all.
#[test]
fn taking_a_snapshot_does_not_perturb_the_run() {
    let run = |seed: u64, pause_at: Option<u64>| {
        let (topo, srcs, dst) = dumbbell(6, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default()
                .with_loss(FaultTarget::Data, 0.004)
                .with_loss(FaultTarget::Cnp, 0.01),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 1_000_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        if let Some(k) = pause_at {
            while sim.events_processed() < k && sim.step() {}
            let bytes = sim.snapshot();
            assert!(!bytes.is_empty());
        }
        let done = sim.run_until_flows_done(SimTime::from_millis(100)).is_complete();
        assert!(done, "faulted incast must complete within the horizon");
        summarize(&sim)
    };
    for seed in [1u64, 7, 42] {
        let plain = run(seed, None);
        for k in [0u64, 1_000, 30_000] {
            let paused = run(seed, Some(k));
            assert_eq!(
                plain, paused,
                "snapshot at event {k} perturbed the run at seed {seed}"
            );
        }
    }
}

/// Determinism of the telemetry itself: two instrumented runs of the same
/// seed produce the identical event log and metrics export.
#[test]
fn telemetry_output_is_deterministic() {
    let run = |seed| {
        let (topo, srcs, dst) = dumbbell(4, 40);
        let cfg = SimConfig {
            seed,
            fault_plan: FaultPlan::default().with_loss(FaultTarget::Data, 0.002),
            ..SimConfig::default()
        };
        let mut sim = Sim::new(
            topo,
            cfg,
            Box::new(RoccHostCcFactory::new()),
            Box::new(RoccSwitchCcFactory::new()),
        );
        sim.trace.telemetry.collect(EventMask::ALL);
        sim.trace.telemetry.enable_metrics();
        for (i, &s) in srcs.iter().enumerate() {
            sim.add_flow(FlowSpec {
                id: FlowId(i as u64),
                src: s,
                dst,
                size: 500_000,
                start: SimTime::ZERO,
                offered: None,
            });
        }
        let _ = sim.run_until_flows_done(SimTime::from_millis(50));
        let metrics = sim.trace.telemetry.metrics_json();
        let timeline: Vec<String> = sim
            .trace
            .telemetry
            .events
            .iter()
            .map(|e| e.to_json())
            .collect();
        (timeline, metrics)
    };
    let (t1, m1) = run(11);
    let (t2, m2) = run(11);
    assert_eq!(t1, t2, "event timeline not deterministic");
    assert_eq!(m1, m2, "metrics export not deterministic");
    assert!(!t1.is_empty());
}
